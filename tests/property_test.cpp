// Deeper property-based suites validating implementations against
// brute-force references on randomized small inputs:
//  * hierarchical clustering vs an O(n^3) reference agglomerator
//  * hypergeometric tail vs direct summation over the support
//  * mpx collectives under message storms
//  * wall culling: executing only culled commands == executing all
//  * borrowed-mapped engines vs heap engines: bit-identical across every
//    metric x top-k strategy x pool width on randomized matrices
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <numeric>

#include "cluster/hclust.hpp"
#include "expr/engine_rows.hpp"
#include "expr/expression_matrix.hpp"
#include "mpx/communicator.hpp"
#include "par/thread_pool.hpp"
#include "sim/lsh.hpp"
#include "sim/similarity_engine.hpp"
#include "stats/special.hpp"
#include "store/artifact_store.hpp"
#include "store/cached.hpp"
#include "util/rng.hpp"
#include "util/triangular.hpp"
#include "wall/command.hpp"
#include "wall/wall_display.hpp"

namespace {

namespace cl = fv::cluster;

// ---------------------------------------------------------------------------
// Reference agglomerative clustering: O(n^3), no caching tricks — scan the
// full active distance matrix for the global minimum at every step.
std::vector<cl::Merge> reference_agglomerate(cl::DistanceMatrix distances,
                                             cl::Linkage linkage) {
  const std::size_t n = distances.size();
  std::vector<bool> active(n, true);
  std::vector<std::size_t> size(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);
  std::vector<cl::Merge> merges;
  for (std::size_t step = 0; step + 1 < n; ++step) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (distances.at(i, j) < best) {
          best = distances.at(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    merges.push_back(cl::Merge{node_id[bi], node_id[bj], best});
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double updated = 0.0;
      switch (linkage) {
        case cl::Linkage::kSingle:
          updated = std::min(distances.at(bi, k), distances.at(bj, k));
          break;
        case cl::Linkage::kComplete:
          updated = std::max(distances.at(bi, k), distances.at(bj, k));
          break;
        case cl::Linkage::kAverage:
          updated = (static_cast<double>(size[bi]) * distances.at(bi, k) +
                     static_cast<double>(size[bj]) * distances.at(bj, k)) /
                    static_cast<double>(size[bi] + size[bj]);
          break;
      }
      distances.set(bi, k, static_cast<float>(updated));
    }
    active[bj] = false;
    size[bi] += size[bj];
    node_id[bi] = static_cast<int>(n + step);
  }
  return merges;
}

cl::DistanceMatrix random_distances(std::size_t n, fv::Rng& rng) {
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d.set(i, j, static_cast<float>(rng.uniform(0.01, 2.0)));
    }
  }
  return d;
}

class HclustVsReferenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HclustVsReferenceTest, MatchesBruteForce) {
  const auto [seed, linkage_index] = GetParam();
  const auto linkage = static_cast<cl::Linkage>(linkage_index);
  fv::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 4 + static_cast<std::size_t>(seed) % 14;
  const auto distances = random_distances(n, rng);

  const auto fast = cl::agglomerate(distances, linkage);
  const auto reference = reference_agglomerate(distances, linkage);
  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    // Merge heights must match exactly step for step. Child ids may swap
    // sides, so compare as unordered pairs.
    EXPECT_NEAR(fast[i].distance, reference[i].distance, 1e-5)
        << "merge " << i;
    const auto fast_pair = std::minmax(fast[i].left, fast[i].right);
    const auto ref_pair = std::minmax(reference[i].left, reference[i].right);
    EXPECT_EQ(fast_pair, ref_pair) << "merge " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMatrices, HclustVsReferenceTest,
    ::testing::Combine(::testing::Range(1, 12),
                       ::testing::Values(0, 1, 2)));  // single/complete/avg

// ---------------------------------------------------------------------------
// Hypergeometric tails vs direct full-support summation.
class HypergeometricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HypergeometricPropertyTest, TailsMatchDirectSummation) {
  fv::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::uint64_t N = 10 + rng.uniform_u64(200);
  const std::uint64_t K = rng.uniform_u64(N + 1);
  const std::uint64_t n = rng.uniform_u64(N + 1);
  const std::uint64_t hi = std::min(n, K);
  // Direct summation across the whole support.
  double cumulative = 0.0;
  for (std::uint64_t k = 0; k <= hi; ++k) {
    cumulative += fv::stats::hypergeometric_pmf(k, N, K, n);
  }
  EXPECT_NEAR(cumulative, 1.0, 1e-9);
  // Upper tail at a random threshold.
  const std::uint64_t threshold = rng.uniform_u64(hi + 2);
  double direct_upper = 0.0;
  for (std::uint64_t k = threshold; k <= hi; ++k) {
    direct_upper += fv::stats::hypergeometric_pmf(k, N, K, n);
  }
  EXPECT_NEAR(fv::stats::hypergeometric_upper_tail(threshold, N, K, n),
              std::min(direct_upper, 1.0), 1e-9);
  // Monotonicity: P[X >= k] decreases in k.
  double previous = 1.0;
  for (std::uint64_t k = 0; k <= hi + 1; ++k) {
    const double tail = fv::stats::hypergeometric_upper_tail(k, N, K, n);
    EXPECT_LE(tail, previous + 1e-12);
    previous = tail;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomUrns, HypergeometricPropertyTest,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// mpx under load: many interleaved tagged messages must be delivered in
// per-(source, tag) FIFO order with nothing lost.
TEST(MpxStressTest, MessageStormKeepsOrderAndCompleteness) {
  constexpr int kRanks = 4;
  constexpr int kMessagesPerPair = 200;
  fv::mpx::run_group(kRanks, [&](fv::mpx::Comm& comm) {
    // Everyone sends numbered messages to everyone on two tags.
    for (int dest = 0; dest < comm.size(); ++dest) {
      if (dest == comm.rank()) continue;
      for (int i = 0; i < kMessagesPerPair; ++i) {
        comm.send_value<int>(dest, i % 2, i);
      }
    }
    // Receive: per (source, tag) the values must arrive ascending.
    for (int source = 0; source < comm.size(); ++source) {
      if (source == comm.rank()) continue;
      for (int tag = 0; tag < 2; ++tag) {
        int previous = -1;
        for (int i = 0; i < kMessagesPerPair / 2; ++i) {
          const int value = comm.recv_value<int>(source, tag);
          EXPECT_GT(value, previous);
          EXPECT_EQ(value % 2, tag);
          previous = value;
        }
      }
    }
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Wall culling is sound: rendering a tile from the culled command list is
// identical to rendering it from the full list.
class CullSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CullSoundnessTest, CulledEqualsFull) {
  fv::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  fv::wall::RecordingCanvas canvas;
  for (int i = 0; i < 60; ++i) {
    const long x = static_cast<long>(rng.uniform_u64(400)) - 50;
    const long y = static_cast<long>(rng.uniform_u64(300)) - 50;
    switch (rng.uniform_u64(3)) {
      case 0:
        canvas.fill_rect(x, y, 1 + static_cast<long>(rng.uniform_u64(60)),
                         1 + static_cast<long>(rng.uniform_u64(40)),
                         fv::render::colors::kRed);
        break;
      case 1:
        canvas.line(x, y, x + 70, y + 25, fv::render::colors::kGreen);
        break;
      default:
        canvas.text(x, y, "NODE" + std::to_string(i),
                    fv::render::colors::kWhite, 1);
        break;
    }
  }
  const auto commands = canvas.take();
  const fv::layout::Rect tile{120, 80, 100, 100};

  fv::render::Framebuffer from_full(100, 100);
  fv::wall::replay_commands(from_full, commands, tile.x, tile.y);

  // Manual cull, then replay only the survivors.
  fv::wall::CommandList culled;
  for (const auto& command : commands) {
    if (fv::layout::overlaps(command.bounds(), tile)) {
      culled.push_back(command);
    }
  }
  fv::render::Framebuffer from_culled(100, 100);
  fv::wall::replay_commands(from_culled, culled, tile.x, tile.y);
  EXPECT_EQ(from_full, from_culled);
  EXPECT_LE(culled.size(), commands.size());
}

INSTANTIATE_TEST_SUITE_P(Scenes, CullSoundnessTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Storage-equivalence property: a borrowed-mapped engine (arrays served as
// read-only spans into the artifact mapping) must be BIT-IDENTICAL to the
// heap engine its artifact was saved from — same condensed triangle (pooled
// AND serial streaming driver), same top-k table under every strategy, same
// reconstructed input rows — across randomized matrices x metrics x
// strategies x pool widths. Equality is memcmp/== on floats, never a
// tolerance: storage residency must not perturb a single bit.

namespace sim = fv::sim;
namespace st = fv::store;
namespace fs = std::filesystem;

fv::expr::ExpressionMatrix random_matrix(std::size_t rows, std::size_t cols,
                                         fv::Rng& rng) {
  fv::expr::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double base = static_cast<double>(r % 9);
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform() < 0.1) continue;  // ~10% missing cells
      m.set(r, c,
            static_cast<float>(std::cos(base + 0.4 * c) +
                               0.3 * rng.normal()));
    }
  }
  return m;
}

/// (seed, metric index, strategy index, pool threads).
class MappedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {
 protected:
  void SetUp() override {
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    std::replace(name.begin(), name.end(), '/', '_');
    dir_ = (fs::temp_directory_path() / ("fv_mapped_prop_" + name)).string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_P(MappedEquivalenceTest, MappedEngineIsBitIdenticalToHeap) {
  const auto [seed, metric_index, strategy_index, threads] = GetParam();
  const auto metric = static_cast<sim::Metric>(metric_index);
  const auto strategy = static_cast<sim::TopKStrategy>(strategy_index);
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " metric=" + std::to_string(metric_index) +
               " strategy=" + std::to_string(strategy_index) +
               " threads=" + std::to_string(threads));
  if (metric == sim::Metric::kEuclidean &&
      strategy != sim::TopKStrategy::kExact) {
    GTEST_SKIP() << "pruned/approx require a correlation metric";
  }

  fv::Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  const std::size_t n = 120 + static_cast<std::size_t>(seed) % 60;
  const auto matrix = random_matrix(n, 24, rng);
  const auto heap = sim::SimilarityEngine::from_rows(matrix, metric);
  ASSERT_EQ(heap.storage(), sim::EngineStorage::kOwnedHeap);

  // Persist cold, then reopen as a borrowed-mapped engine.
  st::ArtifactStore store(dir_);
  const auto input_key = st::matrix_key(matrix);
  st::OpenStats stats;
  const auto mapped = st::open_or_build_engine_mapped(
      store, input_key, [&]() { return matrix; }, metric,
      sim::Precompute::kAllPairs, sim::DenseKernel::kAuto, &stats);
  EXPECT_TRUE(stats.persisted);
  ASSERT_EQ(mapped.storage(), sim::EngineStorage::kBorrowedMapped);
  ASSERT_EQ(mapped.size(), heap.size());
  ASSERT_EQ(mapped.stride(), heap.stride());

  fv::par::ThreadPool pool(static_cast<std::size_t>(threads));

  // Condensed triangle: heap pooled == mapped pooled == mapped SERIAL
  // (the out-of-core streaming driver with page release + backing checks).
  const std::size_t cells = fv::condensed_size(heap.size());
  std::vector<float> heap_condensed(cells), mapped_condensed(cells),
      mapped_streamed(cells);
  heap.condensed_distances(heap_condensed, pool);
  mapped.condensed_distances(mapped_condensed, pool);
  mapped.condensed_distances(mapped_streamed);
  EXPECT_EQ(std::memcmp(heap_condensed.data(), mapped_condensed.data(),
                        cells * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(heap_condensed.data(), mapped_streamed.data(),
                        cells * sizeof(float)),
            0);

  // Top-k under the parameterized strategy. kApprox additionally reuses a
  // BORROWED-MAPPED LSH index on the mapped side — signatures served as
  // spans into the persisted bank, zero rebuilt.
  sim::LshParams lsh;
  lsh.bits = 64;
  lsh.tables = 8;
  sim::NeighborTable heap_table, mapped_table;
  if (strategy == sim::TopKStrategy::kApprox) {
    fv::par::ThreadPool build_pool(2);
    heap_table = heap.top_k_neighbors(6, pool, 0, strategy, nullptr, lsh);
    (void)st::open_or_build_lsh(store, heap, lsh, build_pool);
    const auto mapped_lsh = st::open_lsh_mapped(store, mapped, lsh);
    ASSERT_TRUE(mapped_lsh.has_value());
    ASSERT_EQ(mapped_lsh->storage(), sim::EngineStorage::kBorrowedMapped);
    sim::TopKStats topk_stats;
    mapped_table = mapped.top_k_neighbors(6, pool, 0, strategy, &topk_stats,
                                          lsh, &*mapped_lsh);
    EXPECT_EQ(topk_stats.signatures_built, 0u);
  } else {
    heap_table = heap.top_k_neighbors(6, pool, 0, strategy);
    mapped_table = mapped.top_k_neighbors(6, pool, 0, strategy);
  }
  EXPECT_EQ(mapped_table.indices, heap_table.indices);
  EXPECT_EQ(mapped_table.distances, heap_table.distances);
  EXPECT_EQ(mapped_table.valid, heap_table.valid);

  // Compendium rows served off the mapping reconstruct the exact input.
  const auto roundtrip = fv::expr::matrix_from_engine(mapped);
  ASSERT_EQ(roundtrip.rows(), matrix.rows());
  ASSERT_EQ(roundtrip.cols(), matrix.cols());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    const auto a = matrix.row(r);
    const auto b = roundtrip.row(r);
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMatrices, MappedEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 3),  // seeds (logged via SCOPED_TRACE)
        ::testing::Values(static_cast<int>(sim::Metric::kPearson),
                          static_cast<int>(sim::Metric::kSpearman),
                          static_cast<int>(sim::Metric::kEuclidean)),
        ::testing::Values(static_cast<int>(sim::TopKStrategy::kExact),
                          static_cast<int>(sim::TopKStrategy::kPruned),
                          static_cast<int>(sim::TopKStrategy::kApprox)),
        ::testing::Values(1, 4)));  // pool widths

}  // namespace
