// Tests for the mpx message-passing substrate: point-to-point semantics,
// collectives (validated against sequential references on random payloads),
// and failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>

#include "mpx/communicator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

namespace mpx = fv::mpx;

TEST(PayloadTest, WriterReaderRoundTrip) {
  mpx::PayloadWriter writer;
  writer.write<int>(42);
  writer.write<double>(3.5);
  writer.write_string("hello");
  const std::vector<float> values{1.0f, 2.0f, 3.0f};
  writer.write_span(std::span<const float>(values));
  const auto payload = writer.take();

  mpx::PayloadReader reader(payload);
  EXPECT_EQ(reader.read<int>(), 42);
  EXPECT_DOUBLE_EQ(reader.read<double>(), 3.5);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_EQ(reader.read_vector<float>(), values);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(PayloadTest, UnderrunThrows) {
  mpx::PayloadWriter writer;
  writer.write<int>(1);
  const auto payload = writer.take();
  mpx::PayloadReader reader(payload);
  reader.read<int>();
  EXPECT_THROW(reader.read<double>(), fv::InvalidArgument);
}

TEST(MailboxTest, FifoPerSourceAndTag) {
  mpx::Mailbox box;
  for (int i = 0; i < 3; ++i) {
    mpx::Message m;
    m.source = 0;
    m.tag = 7;
    m.payload.resize(static_cast<std::size_t>(i));
    box.deliver(std::move(m));
  }
  EXPECT_EQ(box.pending(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(box.receive(0, 7).payload.size(), i);
  }
}

TEST(MailboxTest, SelectiveReceiveSkipsNonMatching) {
  mpx::Mailbox box;
  mpx::Message a;
  a.source = 0;
  a.tag = 1;
  box.deliver(std::move(a));
  mpx::Message b;
  b.source = 2;
  b.tag = 5;
  box.deliver(std::move(b));
  const auto got = box.receive(2, 5);
  EXPECT_EQ(got.source, 2);
  EXPECT_EQ(box.pending(), 1u);
  EXPECT_FALSE(box.try_receive(9, 9).has_value());
  EXPECT_TRUE(box.try_receive(mpx::kAnySource, mpx::kAnyTag).has_value());
}

TEST(MailboxTest, AbortUnblocksReceivers) {
  mpx::Mailbox box;
  box.abort();
  EXPECT_THROW(box.receive(), fv::Error);
}

TEST(RunGroupTest, PingPong) {
  std::atomic<int> checks{0};
  mpx::run_group(2, [&](mpx::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 0, 123);
      const int reply = comm.recv_value<int>(1, 1);
      EXPECT_EQ(reply, 124);
      checks.fetch_add(1);
    } else {
      const int value = comm.recv_value<int>(0, 0);
      comm.send_value<int>(0, 1, value + 1);
    }
  });
  EXPECT_EQ(checks.load(), 1);
}

TEST(RunGroupTest, SingleRankGroupWorks) {
  mpx::run_group(1, [&](mpx::Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    std::vector<int> data{1, 2, 3};
    comm.broadcast(0, data);
    EXPECT_EQ(data.size(), 3u);
    EXPECT_DOUBLE_EQ(comm.all_reduce_sum(5.0), 5.0);
  });
}

TEST(RunGroupTest, UserTagsMustBeNonNegative) {
  EXPECT_THROW(mpx::run_group(2,
                              [&](mpx::Comm& comm) {
                                if (comm.rank() == 0) {
                                  comm.send_value<int>(1, -3, 1);
                                } else {
                                  comm.recv_value<int>(0, -3);
                                }
                              }),
               fv::Error);
}

TEST(RunGroupTest, ExceptionAbortsWholeGroup) {
  // Rank 1 throws while rank 0 blocks in recv; the abort must unblock it and
  // run_group must rethrow the original error.
  EXPECT_THROW(mpx::run_group(2,
                              [&](mpx::Comm& comm) {
                                if (comm.rank() == 0) {
                                  comm.recv();  // would block forever
                                } else {
                                  throw std::runtime_error("rank 1 died");
                                }
                              }),
               std::exception);
}

TEST(RunGroupTest, BarrierSynchronizesPhases) {
  // Every rank increments, barriers, then checks the full count — fails if
  // the barrier does not separate the phases.
  constexpr int kRanks = 4;
  std::atomic<int> phase_one{0};
  mpx::run_group(kRanks, [&](mpx::Comm& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase_one.load(), kRanks);
    comm.barrier();
  });
}

TEST(CollectiveTest, BroadcastDeliversRootBuffer) {
  mpx::run_group(4, [&](mpx::Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 2) data = {10, 20, 30, 40, 50};
    comm.broadcast(2, data);
    EXPECT_EQ(data, (std::vector<int>{10, 20, 30, 40, 50}));
  });
}

TEST(CollectiveTest, RepeatedBroadcastsStayOrdered) {
  mpx::run_group(3, [&](mpx::Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<int> data;
      if (comm.rank() == 0) data = {round, round + 1};
      comm.broadcast(0, data);
      ASSERT_EQ(data.size(), 2u);
      EXPECT_EQ(data[0], round);
    }
  });
}

TEST(CollectiveTest, GatherCollectsInRankOrder) {
  mpx::run_group(4, [&](mpx::Comm& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1,
                          comm.rank());
    const auto parts = comm.gather(0, std::span<const int>(mine));
    if (comm.rank() == 0) {
      ASSERT_EQ(parts.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        const auto& part = parts[static_cast<std::size_t>(r)];
        ASSERT_EQ(part.size(), static_cast<std::size_t>(r) + 1);
        for (int v : part) EXPECT_EQ(v, r);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST(CollectiveTest, ScatterHandsOutParts) {
  mpx::run_group(3, [&](mpx::Comm& comm) {
    std::vector<std::vector<int>> parts;
    if (comm.rank() == 1) {
      parts = {{0}, {1, 1}, {2, 2, 2}};
    }
    const auto mine = comm.scatter(1, parts);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(comm.rank()) + 1);
    for (int v : mine) EXPECT_EQ(v, comm.rank());
  });
}

TEST(CollectiveTest, AllGatherValueOrdered) {
  mpx::run_group(5, [&](mpx::Comm& comm) {
    const auto values = comm.all_gather_value<int>(comm.rank() * 10);
    ASSERT_EQ(values.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(values[static_cast<std::size_t>(r)], r * 10);
    }
  });
}

TEST(CollectiveTest, ReduceMatchesSequentialReference) {
  // Random payloads, sum and max reductions vs locally computed reference.
  for (int trial = 0; trial < 5; ++trial) {
    fv::Rng rng(static_cast<std::uint64_t>(trial) + 100);
    constexpr int kRanks = 4;
    std::vector<double> inputs(kRanks);
    for (double& v : inputs) v = rng.uniform(-10.0, 10.0);
    const double expected_sum =
        std::accumulate(inputs.begin(), inputs.end(), 0.0);
    const double expected_max =
        *std::max_element(inputs.begin(), inputs.end());

    mpx::run_group(kRanks, [&](mpx::Comm& comm) {
      const double mine = inputs[static_cast<std::size_t>(comm.rank())];
      const double sum = comm.reduce(
          0, mine, [](double a, double b) { return a + b; });
      if (comm.rank() == 0) {
        EXPECT_NEAR(sum, expected_sum, 1e-9);
      }
      const double max = comm.reduce(
          0, mine, [](double a, double b) { return std::max(a, b); });
      if (comm.rank() == 0) {
        EXPECT_NEAR(max, expected_max, 1e-12);
      }
      EXPECT_NEAR(comm.all_reduce_sum(mine), expected_sum, 1e-9);
    });
  }
}

TEST(CollectiveTest, InvalidRootThrows) {
  // Both ranks hit the same FV_REQUIRE independently, so the aggregated
  // GroupFailure (not a single rank's InvalidArgument) surfaces.
  try {
    mpx::run_group(2, [&](mpx::Comm& comm) {
      std::vector<int> data{1};
      comm.broadcast(7, data);
    });
    FAIL() << "expected GroupFailure";
  } catch (const mpx::GroupFailure& failure) {
    ASSERT_EQ(failure.failures().size(), 2u);
    EXPECT_EQ(failure.failures()[0].rank, 0);
    EXPECT_EQ(failure.failures()[1].rank, 1);
  }
}

// Property sweep over group sizes: a pipeline where each rank forwards an
// accumulating vector to the next rank, validating ordering and payload
// integrity end to end.
class GroupSizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizePropertyTest, RingAccumulation) {
  const int ranks = GetParam();
  mpx::run_group(ranks, [&](mpx::Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
    if (comm.rank() == 0) {
      std::vector<int> token{0};
      if (comm.size() > 1) {
        comm.send_vector<int>(next, 0, token);
        token = comm.recv_vector<int>(prev, 0);
      }
      ASSERT_EQ(token.size(), static_cast<std::size_t>(comm.size()));
      for (int i = 0; i < comm.size(); ++i) {
        EXPECT_EQ(token[static_cast<std::size_t>(i)], i);
      }
    } else {
      auto token = comm.recv_vector<int>(prev, 0);
      token.push_back(comm.rank());
      comm.send_vector<int>(next, 0, token);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupSizePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// -- envelope integrity ------------------------------------------------------

TEST(MailboxTest, SealedChecksumDetectsCorruption) {
  mpx::Mailbox box;
  mpx::Message m;
  m.source = 0;
  m.tag = 3;
  m.sequence = 1;
  m.payload = {std::byte{1}, std::byte{2}, std::byte{3}};
  m.checksum = mpx::payload_checksum(m.payload);
  m.payload[1] ^= std::byte{0x40};  // in-flight corruption after sealing
  box.deliver(std::move(m));
  EXPECT_THROW(box.receive(0, 3), fv::CorruptMessageError);
  // The corrupt message was consumed, not left to poison the queue.
  EXPECT_EQ(box.pending(), 0u);
}

TEST(MailboxTest, DuplicateSequenceSuppressed) {
  mpx::Mailbox box;
  const auto make = [](std::uint64_t sequence, std::byte value) {
    mpx::Message m;
    m.source = 0;
    m.tag = 3;
    m.sequence = sequence;
    m.payload = {value};
    m.checksum = mpx::payload_checksum(m.payload);
    return m;
  };
  box.deliver(make(1, std::byte{10}));
  box.deliver(make(1, std::byte{10}));  // duplicated in flight
  box.deliver(make(2, std::byte{20}));
  EXPECT_EQ(box.receive(0, 3).payload[0], std::byte{10});
  EXPECT_EQ(box.receive(0, 3).payload[0], std::byte{20});
  EXPECT_FALSE(box.try_receive(0, 3).has_value());
}

TEST(MailboxTest, CorruptOriginalDoesNotMaskCleanResend) {
  mpx::Mailbox box;
  mpx::Message corrupt;
  corrupt.source = 0;
  corrupt.tag = 3;
  corrupt.sequence = 1;
  corrupt.payload = {std::byte{1}};
  corrupt.checksum = mpx::payload_checksum(corrupt.payload);
  corrupt.payload[0] ^= std::byte{0x40};
  box.deliver(std::move(corrupt));
  EXPECT_THROW(box.receive(0, 3), fv::CorruptMessageError);

  // A clean resend reuses the same sequence number; because the corrupt
  // original never advanced the delivered sequence, it must get through.
  mpx::Message resend;
  resend.source = 0;
  resend.tag = 3;
  resend.sequence = 1;
  resend.payload = {std::byte{1}};
  resend.checksum = mpx::payload_checksum(resend.payload);
  box.deliver(std::move(resend));
  EXPECT_EQ(box.receive(0, 3).payload[0], std::byte{1});
}

// -- abort semantics ---------------------------------------------------------

TEST(MailboxTest, AbortCarriesRankAndReason) {
  mpx::Mailbox box;
  box.abort(3, "disk on fire");
  try {
    box.receive();
    FAIL() << "expected AbortError";
  } catch (const fv::AbortError& e) {
    EXPECT_EQ(e.origin_rank(), 3);
    EXPECT_NE(std::string(e.what()).find("disk on fire"), std::string::npos);
  }
}

TEST(MailboxTest, AbortStillDrainsQueuedMatches) {
  mpx::Mailbox box;
  mpx::Message m;
  m.source = 1;
  m.tag = 4;
  box.deliver(std::move(m));
  box.abort(0, "late failure");
  // The message that arrived before the failure is still delivered...
  EXPECT_EQ(box.receive(1, 4).source, 1);
  // ...and only then does the abort surface.
  EXPECT_THROW(box.receive(1, 4), fv::AbortError);
}

TEST(MailboxTest, WildcardReceiveRacingAbort) {
  mpx::Mailbox box;
  std::atomic<int> seen_rank{-2};
  std::thread receiver([&] {
    try {
      box.receive(mpx::kAnySource, mpx::kAnyTag);
    } catch (const fv::AbortError& e) {
      seen_rank = e.origin_rank();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.abort(1, "peer died");
  receiver.join();
  EXPECT_EQ(seen_rank.load(), 1);
}

TEST(RunGroupTest, AbortAttributionReachesVictims) {
  std::atomic<int> origin{-2};
  std::atomic<bool> reason_seen{false};
  try {
    mpx::run_group(3, [&](mpx::Comm& comm) {
      if (comm.rank() == 2) throw std::runtime_error("disk gone");
      try {
        comm.recv(2, 0);  // never satisfied; unblocked by the abort
      } catch (const fv::AbortError& e) {
        origin = e.origin_rank();
        if (std::string(e.what()).find("disk gone") != std::string::npos) {
          reason_seen = true;
        }
      }
    });
    FAIL() << "expected the originating exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "disk gone");
  }
  EXPECT_EQ(origin.load(), 2);
  EXPECT_TRUE(reason_seen.load());
}

TEST(RunGroupTest, ReservedTagRejectedOnUserSend) {
  EXPECT_THROW(
      mpx::run_group(1, [&](mpx::Comm& comm) { comm.send(0, -2, {}); }),
      fv::InvalidArgument);
}

// -- failure aggregation -----------------------------------------------------

TEST(RunGroupTest, AggregatesMultiRankFailures) {
  try {
    mpx::run_group(2, [&](mpx::Comm& comm) {
      comm.barrier();  // both ranks commit to failing independently
      throw std::runtime_error("rank " + std::to_string(comm.rank()) +
                               " boom");
    });
    FAIL() << "expected GroupFailure";
  } catch (const mpx::GroupFailure& failure) {
    ASSERT_EQ(failure.failures().size(), 2u);
    EXPECT_EQ(failure.failures()[0].rank, 0);
    EXPECT_EQ(failure.failures()[1].rank, 1);
    EXPECT_NE(std::string(failure.what()).find("rank 0 boom"),
              std::string::npos);
    EXPECT_NE(std::string(failure.what()).find("rank 1 boom"),
              std::string::npos);
  }
}

TEST(RunGroupTest, VictimAbortsAreSecondary) {
  // Rank 0 fails only because rank 1 aborted the group; the rethrown
  // exception must be rank 1's original error, not the victim's AbortError
  // and not a two-rank GroupFailure.
  EXPECT_THROW(mpx::run_group(2,
                              [&](mpx::Comm& comm) {
                                if (comm.rank() == 1) {
                                  throw std::runtime_error("boom");
                                }
                                comm.recv(1, 0);  // victim
                              }),
               std::runtime_error);
}

TEST(CollectiveTest, NonRootThrowMidGather) {
  // A non-root dying before it contributes unblocks the root's collective
  // wait via the abort, and the original error is what callers see.
  EXPECT_THROW(
      mpx::run_group(3,
                     [&](mpx::Comm& comm) {
                       if (comm.rank() == 2) {
                         throw std::runtime_error("node lost mid-gather");
                       }
                       const std::vector<int> mine{comm.rank()};
                       comm.gather<int>(0, mine);
                     }),
      std::runtime_error);
}

// -- deadlines ---------------------------------------------------------------

TEST(DeadlineTest, RecvForTimesOut) {
  EXPECT_THROW(
      mpx::run_group(1,
                     [&](mpx::Comm& comm) {
                       comm.recv_for(std::chrono::milliseconds(10), 0, 5);
                     }),
      fv::TimeoutError);
}

TEST(DeadlineTest, TryRecvUntilReturnsNullopt) {
  mpx::run_group(1, [&](mpx::Comm& comm) {
    const auto got = comm.try_recv_until(
        mpx::Comm::Clock::now() + std::chrono::milliseconds(10), 0, 5);
    EXPECT_FALSE(got.has_value());
  });
}

TEST(DeadlineTest, RecvForReturnsEarlyWhenMessageArrives) {
  mpx::run_group(2, [&](mpx::Comm& comm) {
    if (comm.rank() == 1) {
      comm.send_value<int>(0, 9, 41);
      return;
    }
    // Generous timeout: the assertion is that we get the value, not timing.
    const auto message = comm.recv_for(std::chrono::milliseconds(5000), 1, 9);
    mpx::PayloadReader reader(message.payload);
    EXPECT_EQ(reader.read<int>(), 41);
  });
}

TEST(DeadlineTest, BarrierDeadlineThrowsTimeout) {
  EXPECT_THROW(
      mpx::run_group(2,
                     [&](mpx::Comm& comm) {
                       if (comm.rank() == 1) {
                         std::this_thread::sleep_for(
                             std::chrono::milliseconds(300));
                         try {
                           comm.barrier();
                         } catch (const fv::AbortError&) {
                           // expected: rank 0's timeout aborted the group
                         }
                         return;
                       }
                       comm.barrier(std::chrono::milliseconds(30));
                     }),
      fv::TimeoutError);
}

TEST(DeadlineTest, BroadcastDeadlineOnSilentRoot) {
  EXPECT_THROW(
      mpx::run_group(2,
                     [&](mpx::Comm& comm) {
                       if (comm.rank() == 0) return;  // root never broadcasts
                       std::vector<int> data;
                       comm.broadcast(0, data, std::chrono::milliseconds(30));
                     }),
      fv::TimeoutError);
}

// -- deterministic fault injection -------------------------------------------

TEST(FaultInjectionTest, DropAllMakesRecvComeUpEmpty) {
  mpx::FaultSpec faults;
  faults.seed = 7;
  faults.drop_rate = 1.0;
  mpx::run_group(
      2,
      [&](mpx::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 3, 99);
          comm.barrier();
          return;
        }
        comm.barrier();  // the send has definitely happened (and been eaten)
        EXPECT_FALSE(comm
                         .try_recv_until(mpx::Comm::Clock::now() +
                                             std::chrono::milliseconds(20),
                                         0, 3)
                         .has_value());
        ASSERT_NE(comm.fault_stats(), nullptr);
        EXPECT_EQ(comm.fault_stats()->dropped.load(), 1u);
      },
      faults);
}

TEST(FaultInjectionTest, DuplicatesDeliveredOnce) {
  mpx::FaultSpec faults;
  faults.seed = 11;
  faults.duplicate_rate = 1.0;
  mpx::run_group(
      2,
      [&](mpx::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 1; i <= 3; ++i) comm.send_value<int>(1, 3, i * 10);
          comm.barrier();
          return;
        }
        comm.barrier();
        for (int i = 1; i <= 3; ++i) {
          EXPECT_EQ(comm.recv_value<int>(0, 3), i * 10);  // order survives
        }
        EXPECT_FALSE(comm.try_recv(0, 3).has_value());  // duplicates gone
        ASSERT_NE(comm.fault_stats(), nullptr);
        EXPECT_EQ(comm.fault_stats()->duplicated.load(), 3u);
      },
      faults);
}

TEST(FaultInjectionTest, CorruptionSurfacesTyped) {
  mpx::FaultSpec faults;
  faults.seed = 13;
  faults.corrupt_rate = 1.0;
  EXPECT_THROW(mpx::run_group(
                   2,
                   [&](mpx::Comm& comm) {
                     if (comm.rank() == 0) {
                       comm.send_value<int>(1, 3, 1234);
                       return;
                     }
                     comm.recv(0, 3);  // checksum must fire, never garbage
                   },
                   faults),
               fv::CorruptMessageError);
}

TEST(FaultInjectionTest, CrashedRankDiesSilently) {
  mpx::FaultSpec faults;
  faults.seed = 17;
  faults.crash_rank = 1;
  faults.crash_at_op = 1;
  // The survivor sees nothing but silence — and run_group reports no error,
  // exactly like a lost cluster node.
  mpx::run_group(
      2,
      [&](mpx::Comm& comm) {
        if (comm.rank() == 1) {
          comm.send_value<int>(0, 3, 5);  // first op: never happens
          FAIL() << "rank 1 should have crashed before this";
        }
        EXPECT_FALSE(comm
                         .try_recv_until(mpx::Comm::Clock::now() +
                                             std::chrono::milliseconds(50),
                                         1, 3)
                         .has_value());
      },
      faults);
}

TEST(FaultInjectionTest, ExemptTagsNeverFaulted) {
  mpx::FaultSpec faults;
  faults.seed = 19;
  faults.drop_rate = 1.0;
  faults.exempt_tags = {7};
  mpx::run_group(
      2,
      [&](mpx::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 7, 42);
          return;
        }
        EXPECT_EQ(comm.recv_value<int>(0, 7), 42);
      },
      faults);
}

TEST(FaultInjectionTest, DecisionsAreDeterministic) {
  mpx::FaultSpec faults;
  faults.seed = 23;
  faults.drop_rate = 0.3;
  faults.delay_rate = 0.2;
  faults.duplicate_rate = 0.2;
  faults.corrupt_rate = 0.2;
  const mpx::FaultPlan a(faults);
  const mpx::FaultPlan b(faults);
  faults.seed = 24;
  const mpx::FaultPlan c(faults);
  int differs_from_c = 0;
  for (int source = 0; source < 4; ++source) {
    for (int dest = 0; dest < 4; ++dest) {
      for (std::uint64_t seq = 1; seq <= 16; ++seq) {
        const auto action = a.decide(source, dest, 3, seq);
        EXPECT_EQ(action, b.decide(source, dest, 3, seq));
        if (action != c.decide(source, dest, 3, seq)) ++differs_from_c;
        // Reserved tags are never faulted, whatever the seed.
        EXPECT_EQ(a.decide(source, dest, -2, seq), mpx::FaultAction::kNone);
      }
    }
  }
  EXPECT_GT(differs_from_c, 0);  // the seed actually matters
}

}  // namespace
