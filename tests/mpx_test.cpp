// Tests for the mpx message-passing substrate: point-to-point semantics,
// collectives (validated against sequential references on random payloads),
// and failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mpx/communicator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

namespace mpx = fv::mpx;

TEST(PayloadTest, WriterReaderRoundTrip) {
  mpx::PayloadWriter writer;
  writer.write<int>(42);
  writer.write<double>(3.5);
  writer.write_string("hello");
  const std::vector<float> values{1.0f, 2.0f, 3.0f};
  writer.write_span(std::span<const float>(values));
  const auto payload = writer.take();

  mpx::PayloadReader reader(payload);
  EXPECT_EQ(reader.read<int>(), 42);
  EXPECT_DOUBLE_EQ(reader.read<double>(), 3.5);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_EQ(reader.read_vector<float>(), values);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(PayloadTest, UnderrunThrows) {
  mpx::PayloadWriter writer;
  writer.write<int>(1);
  const auto payload = writer.take();
  mpx::PayloadReader reader(payload);
  reader.read<int>();
  EXPECT_THROW(reader.read<double>(), fv::InvalidArgument);
}

TEST(MailboxTest, FifoPerSourceAndTag) {
  mpx::Mailbox box;
  for (int i = 0; i < 3; ++i) {
    mpx::Message m;
    m.source = 0;
    m.tag = 7;
    m.payload.resize(static_cast<std::size_t>(i));
    box.deliver(std::move(m));
  }
  EXPECT_EQ(box.pending(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(box.receive(0, 7).payload.size(), i);
  }
}

TEST(MailboxTest, SelectiveReceiveSkipsNonMatching) {
  mpx::Mailbox box;
  mpx::Message a;
  a.source = 0;
  a.tag = 1;
  box.deliver(std::move(a));
  mpx::Message b;
  b.source = 2;
  b.tag = 5;
  box.deliver(std::move(b));
  const auto got = box.receive(2, 5);
  EXPECT_EQ(got.source, 2);
  EXPECT_EQ(box.pending(), 1u);
  EXPECT_FALSE(box.try_receive(9, 9).has_value());
  EXPECT_TRUE(box.try_receive(mpx::kAnySource, mpx::kAnyTag).has_value());
}

TEST(MailboxTest, AbortUnblocksReceivers) {
  mpx::Mailbox box;
  box.abort();
  EXPECT_THROW(box.receive(), fv::Error);
}

TEST(RunGroupTest, PingPong) {
  std::atomic<int> checks{0};
  mpx::run_group(2, [&](mpx::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 0, 123);
      const int reply = comm.recv_value<int>(1, 1);
      EXPECT_EQ(reply, 124);
      checks.fetch_add(1);
    } else {
      const int value = comm.recv_value<int>(0, 0);
      comm.send_value<int>(0, 1, value + 1);
    }
  });
  EXPECT_EQ(checks.load(), 1);
}

TEST(RunGroupTest, SingleRankGroupWorks) {
  mpx::run_group(1, [&](mpx::Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    std::vector<int> data{1, 2, 3};
    comm.broadcast(0, data);
    EXPECT_EQ(data.size(), 3u);
    EXPECT_DOUBLE_EQ(comm.all_reduce_sum(5.0), 5.0);
  });
}

TEST(RunGroupTest, UserTagsMustBeNonNegative) {
  EXPECT_THROW(mpx::run_group(2,
                              [&](mpx::Comm& comm) {
                                if (comm.rank() == 0) {
                                  comm.send_value<int>(1, -3, 1);
                                } else {
                                  comm.recv_value<int>(0, -3);
                                }
                              }),
               fv::Error);
}

TEST(RunGroupTest, ExceptionAbortsWholeGroup) {
  // Rank 1 throws while rank 0 blocks in recv; the abort must unblock it and
  // run_group must rethrow the original error.
  EXPECT_THROW(mpx::run_group(2,
                              [&](mpx::Comm& comm) {
                                if (comm.rank() == 0) {
                                  comm.recv();  // would block forever
                                } else {
                                  throw std::runtime_error("rank 1 died");
                                }
                              }),
               std::exception);
}

TEST(RunGroupTest, BarrierSynchronizesPhases) {
  // Every rank increments, barriers, then checks the full count — fails if
  // the barrier does not separate the phases.
  constexpr int kRanks = 4;
  std::atomic<int> phase_one{0};
  mpx::run_group(kRanks, [&](mpx::Comm& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase_one.load(), kRanks);
    comm.barrier();
  });
}

TEST(CollectiveTest, BroadcastDeliversRootBuffer) {
  mpx::run_group(4, [&](mpx::Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 2) data = {10, 20, 30, 40, 50};
    comm.broadcast(2, data);
    EXPECT_EQ(data, (std::vector<int>{10, 20, 30, 40, 50}));
  });
}

TEST(CollectiveTest, RepeatedBroadcastsStayOrdered) {
  mpx::run_group(3, [&](mpx::Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<int> data;
      if (comm.rank() == 0) data = {round, round + 1};
      comm.broadcast(0, data);
      ASSERT_EQ(data.size(), 2u);
      EXPECT_EQ(data[0], round);
    }
  });
}

TEST(CollectiveTest, GatherCollectsInRankOrder) {
  mpx::run_group(4, [&](mpx::Comm& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1,
                          comm.rank());
    const auto parts = comm.gather(0, std::span<const int>(mine));
    if (comm.rank() == 0) {
      ASSERT_EQ(parts.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        const auto& part = parts[static_cast<std::size_t>(r)];
        ASSERT_EQ(part.size(), static_cast<std::size_t>(r) + 1);
        for (int v : part) EXPECT_EQ(v, r);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST(CollectiveTest, ScatterHandsOutParts) {
  mpx::run_group(3, [&](mpx::Comm& comm) {
    std::vector<std::vector<int>> parts;
    if (comm.rank() == 1) {
      parts = {{0}, {1, 1}, {2, 2, 2}};
    }
    const auto mine = comm.scatter(1, parts);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(comm.rank()) + 1);
    for (int v : mine) EXPECT_EQ(v, comm.rank());
  });
}

TEST(CollectiveTest, AllGatherValueOrdered) {
  mpx::run_group(5, [&](mpx::Comm& comm) {
    const auto values = comm.all_gather_value<int>(comm.rank() * 10);
    ASSERT_EQ(values.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(values[static_cast<std::size_t>(r)], r * 10);
    }
  });
}

TEST(CollectiveTest, ReduceMatchesSequentialReference) {
  // Random payloads, sum and max reductions vs locally computed reference.
  for (int trial = 0; trial < 5; ++trial) {
    fv::Rng rng(static_cast<std::uint64_t>(trial) + 100);
    constexpr int kRanks = 4;
    std::vector<double> inputs(kRanks);
    for (double& v : inputs) v = rng.uniform(-10.0, 10.0);
    const double expected_sum =
        std::accumulate(inputs.begin(), inputs.end(), 0.0);
    const double expected_max =
        *std::max_element(inputs.begin(), inputs.end());

    mpx::run_group(kRanks, [&](mpx::Comm& comm) {
      const double mine = inputs[static_cast<std::size_t>(comm.rank())];
      const double sum = comm.reduce(
          0, mine, [](double a, double b) { return a + b; });
      if (comm.rank() == 0) {
        EXPECT_NEAR(sum, expected_sum, 1e-9);
      }
      const double max = comm.reduce(
          0, mine, [](double a, double b) { return std::max(a, b); });
      if (comm.rank() == 0) {
        EXPECT_NEAR(max, expected_max, 1e-12);
      }
      EXPECT_NEAR(comm.all_reduce_sum(mine), expected_sum, 1e-9);
    });
  }
}

TEST(CollectiveTest, InvalidRootThrows) {
  EXPECT_THROW(mpx::run_group(2,
                              [&](mpx::Comm& comm) {
                                std::vector<int> data{1};
                                comm.broadcast(7, data);
                              }),
               fv::InvalidArgument);
}

// Property sweep over group sizes: a pipeline where each rank forwards an
// accumulating vector to the next rank, validating ordering and payload
// integrity end to end.
class GroupSizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizePropertyTest, RingAccumulation) {
  const int ranks = GetParam();
  mpx::run_group(ranks, [&](mpx::Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
    if (comm.rank() == 0) {
      std::vector<int> token{0};
      if (comm.size() > 1) {
        comm.send_vector<int>(next, 0, token);
        token = comm.recv_vector<int>(prev, 0);
      }
      ASSERT_EQ(token.size(), static_cast<std::size_t>(comm.size()));
      for (int i = 0; i < comm.size(); ++i) {
        EXPECT_EQ(token[static_cast<std::size_t>(i)], i);
      }
    } else {
      auto token = comm.recv_vector<int>(prev, 0);
      token.push_back(comm.rank());
      comm.send_vector<int>(next, 0, token);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupSizePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
