// Tests for the LSH signature layer (src/sim/lsh.hpp) and the kApprox
// top-k strategy: parameter-contract rejection, signature determinism
// across seeds and thread pools, POPCNT-vs-portable Hamming kernel
// equivalence (against a brute-force bit loop), identical/negated-row
// signature geometry, a seeded planted-module recall harness (recall >=
// 0.95 at k=10/256 bits — the CI recall smoke), rescored-distance
// bit-identity against the exact path for every returned pair, 4-thread
// schedule independence, all-rows-identical and heavily-masked degenerate
// inputs with the min_common filter, Euclidean rejection, and the
// k >= n-1 exact fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/lsh.hpp"
#include "sim/similarity_engine.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

namespace ex = fv::expr;
namespace sm = fv::sim;
namespace st = fv::stats;

/// Planted-module compendium: rows_per_module consecutive rows share one
/// sinusoid over two of the 16-column datasets plus small iid noise, so
/// within-module correlation is ~0.98 and cross-module rows are near
/// orthogonal — the shape the recall guarantee is specified on.
ex::ExpressionMatrix module_matrix(std::size_t rows, std::size_t cols,
                                   std::size_t rows_per_module,
                                   std::uint64_t seed) {
  fv::Rng rng(seed);
  const std::size_t datasets = cols / 16;
  ex::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t module = r / rows_per_module;
    const std::size_t d0 = module % datasets;
    const std::size_t d1 = (module + 1 + module / datasets) % datasets;
    const double freq = 0.35 + 0.07 * static_cast<double>(module % 7);
    const double phase = 0.5 * static_cast<double>(module);
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t dataset = c / 16;
      double value = rng.normal(0.0, 0.05);
      if (dataset == d0 || dataset == d1) {
        value += std::sin(freq * static_cast<double>(c + 1) + phase);
      }
      m.set(r, c, static_cast<float>(value));
    }
  }
  return m;
}

ex::ExpressionMatrix random_masked_matrix(std::size_t rows, std::size_t cols,
                                          double missing_rate,
                                          std::uint64_t seed) {
  fv::Rng rng(seed);
  ex::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double sign = r % 2 == 0 ? 1.0 : -1.0;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform() < missing_rate) continue;  // stays missing (NaN)
      const double pattern = std::sin(0.31 * static_cast<double>(c + 1));
      m.set(r, c, static_cast<float>(sign * pattern + rng.normal(0.0, 0.4)));
    }
  }
  return m;
}

void expect_tables_identical(const sm::NeighborTable& a,
                             const sm::NeighborTable& b) {
  ASSERT_EQ(a.count, b.count);
  ASSERT_EQ(a.k, b.k);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.distances, b.distances);
  EXPECT_EQ(a.valid, b.valid);
}

/// Every (row, neighbor, distance) a table reports must carry the exact
/// engine distance, bit for bit — the kApprox honesty contract.
void expect_bit_identical_distances(const sm::NeighborTable& table,
                                    const sm::SimilarityEngine& engine) {
  for (std::size_t i = 0; i < table.count; ++i) {
    const auto idx = table.neighbors(i);
    const auto dist = table.neighbor_distances(i);
    for (std::size_t s = 0; s < idx.size(); ++s) {
      const std::size_t a = std::min<std::size_t>(i, idx[s]);
      const std::size_t b = std::max<std::size_t>(i, idx[s]);
      EXPECT_EQ(dist[s], engine.distance(a, b))
          << "row " << i << " slot " << s;
    }
  }
}

TEST(LshIndexTest, RejectsOutOfContractParams) {
  fv::par::ThreadPool pool(1);
  const auto m = module_matrix(32, 96, 8, 11);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  const auto build = [&](sm::LshParams p) { sm::LshIndex(engine, p, pool); };
  EXPECT_THROW(build({.bits = 48}), fv::InvalidArgument);    // not /64
  EXPECT_THROW(build({.bits = 0}), fv::InvalidArgument);     // below range
  EXPECT_THROW(build({.bits = 2048}), fv::InvalidArgument);  // above range
  EXPECT_THROW(build({.tables = 0}), fv::InvalidArgument);
  EXPECT_THROW(build({.bits = 64, .tables = 65}), fv::InvalidArgument);
  EXPECT_THROW(build({.probes = 0}), fv::InvalidArgument);
  // slice_bits = 256/16 = 16, so 18 probes (17 flips) is out of contract.
  EXPECT_THROW(build({.probes = 18}), fv::InvalidArgument);
  const auto euclid =
      sm::SimilarityEngine::from_rows(m, sm::Metric::kEuclidean);
  EXPECT_THROW(sm::LshIndex(euclid, sm::LshParams{}, pool),
               fv::InvalidArgument);
}

TEST(LshIndexTest, SignaturesDeterministicAcrossPoolsAndSeedSensitive) {
  const auto m = module_matrix(96, 96, 12, 23);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool serial(1);
  fv::par::ThreadPool pooled(4);
  const sm::LshIndex base(engine, sm::LshParams{}, serial);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const sm::LshIndex again(engine, sm::LshParams{}, pooled);
    for (std::size_t i = 0; i < engine.size(); ++i) {
      const auto a = base.signature(i);
      const auto b = again.signature(i);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "row " << i;
    }
  }
  sm::LshParams reseeded;
  reseeded.seed ^= 0x9e3779b97f4a7c15ULL;
  const sm::LshIndex other(engine, reseeded, serial);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const auto a = base.signature(i);
    const auto b = other.signature(i);
    if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) ++differing;
  }
  // A different hyperplane bank must produce different signatures for
  // essentially every non-degenerate row.
  EXPECT_GT(differing, engine.size() / 2);
}

TEST(LshHammingTest, PopcountAndPortableKernelsAgree) {
  fv::Rng rng(77);
  for (const std::size_t words : {1u, 2u, 4u, 7u, 16u}) {
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<std::uint64_t> a(words), b(words);
      for (std::size_t w = 0; w < words; ++w) {
        a[w] = rng.next_u64();
        // Mix in sparse and dense words so per-word popcounts span 0..64.
        b[w] = trial % 3 == 0 ? a[w] : (trial % 3 == 1 ? ~a[w] : rng.next_u64());
      }
      // Brute-force bit loop: the semantics both kernels must match.
      std::size_t expected = 0;
      for (std::size_t w = 0; w < words; ++w) {
        for (std::size_t bit = 0; bit < 64; ++bit) {
          expected += ((a[w] ^ b[w]) >> bit) & 1u;
        }
      }
      EXPECT_EQ(sm::hamming_words(a.data(), b.data(), words), expected);
      EXPECT_EQ(sm::hamming_words_portable(a.data(), b.data(), words),
                expected);
    }
  }
}

TEST(LshIndexTest, IdenticalAndNegatedRowsPinSignatureGeometry) {
  // Row 1 duplicates row 0; row 2 is its negation. Identical normalized
  // rows project identically (Hamming 0, estimated distance 0); a negated
  // row flips every projection sign (Hamming == bits, estimate ~2).
  const std::size_t cols = 32;
  std::vector<float> flat(3 * cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const float v =
        static_cast<float>(std::sin(0.41 * static_cast<double>(c + 1)));
    flat[c] = v;
    flat[cols + c] = v;
    flat[2 * cols + c] = -v;
  }
  const auto engine = sm::SimilarityEngine::from_profiles(
      flat, 3, cols, sm::Metric::kPearson);
  fv::par::ThreadPool pool(2);
  const sm::LshIndex index(engine, sm::LshParams{}, pool);
  EXPECT_EQ(index.hamming(0, 1), 0u);
  EXPECT_EQ(index.estimated_distance(0, 1), 0.0);
  EXPECT_EQ(index.hamming(0, 2), index.bits());
  EXPECT_NEAR(index.estimated_distance(0, 2), 2.0, 1e-12);
}

TEST(LshTopKTest, PlantedModuleRecallAtLeast95Percent) {
  // The CI recall smoke: n=512 rows in 32 planted modules of 16, k=10,
  // default 256-bit/16-table/2-probe params. Within-module correlation
  // ~0.98 puts every true neighbor inside the caller's module, and the
  // collision probability math (p_bit ~ 0.94, 16-bit slices, 16 tables)
  // predicts per-neighbor recall ~0.999 — 0.95 leaves honest slack.
  const auto m = module_matrix(512, 96, 16, 4242);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool pool(4);
  const std::size_t k = 10;
  const auto exact =
      engine.top_k_neighbors(k, pool, 0, sm::TopKStrategy::kExact);
  sm::TopKStats stats;
  const auto approx = engine.top_k_neighbors(
      k, pool, 0, sm::TopKStrategy::kApprox, &stats);

  std::size_t hits = 0, wanted = 0;
  for (std::size_t i = 0; i < exact.count; ++i) {
    const auto want = exact.neighbors(i);
    const auto got = approx.neighbors(i);
    const std::set<std::uint32_t> got_set(got.begin(), got.end());
    wanted += want.size();
    for (const auto j : want) hits += got_set.count(j);
  }
  const double recall =
      static_cast<double>(hits) / static_cast<double>(wanted);
  EXPECT_GE(recall, 0.95) << hits << "/" << wanted;

  // Honesty of the stats block: the LSH path really ran, rescored a
  // sub-quadratic fraction of all pairs, and reported it.
  EXPECT_EQ(stats.signatures_built, engine.size());
  EXPECT_GT(stats.buckets_probed, 0u);
  EXPECT_GT(stats.candidates_generated, 0u);
  EXPECT_GT(stats.candidates_rescored, 0u);
  EXPECT_LE(stats.candidates_rescored, stats.candidates_generated);
  EXPECT_GT(stats.exact_dot_fraction, 0.0);
  EXPECT_LT(stats.exact_dot_fraction, 0.5);

  expect_bit_identical_distances(approx, engine);
}

TEST(LshTopKTest, DeterministicUnderAnyThreadCount) {
  const auto m = module_matrix(192, 96, 16, 99);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool serial(1);
  const auto base = engine.top_k_neighbors(8, serial, 0,
                                           sm::TopKStrategy::kApprox);
  fv::par::ThreadPool pooled(4);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto again = engine.top_k_neighbors(8, pooled, 0,
                                              sm::TopKStrategy::kApprox);
    expect_tables_identical(base, again);
  }
}

TEST(LshTopKTest, AllRowsIdenticalMatchesExactBitwise) {
  // 130 identical rows (crossing the 64-row tile edge): every pair
  // collides in every table, all distances are 0, and the (distance,
  // index) total order must resolve ties exactly as the exact path does.
  const std::size_t cols = 48;
  ex::ExpressionMatrix m(130, cols);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c,
            static_cast<float>(std::cos(0.23 * static_cast<double>(c + 1))));
    }
  }
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool pool(3);
  const auto exact =
      engine.top_k_neighbors(6, pool, 0, sm::TopKStrategy::kExact);
  sm::TopKStats stats;
  const auto approx = engine.top_k_neighbors(
      6, pool, 0, sm::TopKStrategy::kApprox, &stats);
  expect_tables_identical(exact, approx);
  // The degenerate bucket honestly rescans itself: all n(n-1)/2 pairs.
  EXPECT_EQ(stats.candidates_rescored, 130u * 129u / 2u);
}

TEST(LshTopKTest, MaskedRowsHonorMinCommonDuringRescoring) {
  // 40% missing cells: signatures degrade (zero-filled projections) but
  // whatever IS returned must still satisfy min_common and carry exact
  // distances — the filter runs at rescoring, never in the candidate
  // stage, so no masked pair can sneak through unfiltered.
  const std::size_t min_common = 6;
  const auto m = random_masked_matrix(96, 12, 0.4, 3131);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool pool(2);
  sm::TopKStats stats;
  const auto table = engine.top_k_neighbors(
      5, pool, min_common, sm::TopKStrategy::kApprox, &stats);
  EXPECT_EQ(stats.signatures_built, engine.size());
  for (std::size_t i = 0; i < table.count; ++i) {
    for (const auto j : table.neighbors(i)) {
      std::size_t common = 0;
      for (std::size_t c = 0; c < engine.length(); ++c) {
        if (engine.value_present(i, c) && engine.value_present(j, c)) {
          ++common;
        }
      }
      EXPECT_GE(common, min_common) << "pair " << i << "," << j;
    }
  }
  expect_bit_identical_distances(table, engine);
}

TEST(LshTopKTest, EuclideanRejectedWithTypedError) {
  const auto m = module_matrix(32, 96, 8, 7);
  const auto engine =
      sm::SimilarityEngine::from_rows(m, sm::Metric::kEuclidean);
  fv::par::ThreadPool pool(1);
  EXPECT_THROW(
      engine.top_k_neighbors(3, pool, 0, sm::TopKStrategy::kApprox),
      fv::InvalidArgument);
  // kAuto on Euclidean still routes to kExact and succeeds.
  const auto table = engine.top_k_neighbors(3, pool);
  EXPECT_EQ(table.count, engine.size());
}

TEST(LshTopKTest, LargeKFallsBackToExact) {
  // k >= n-1 wants every neighbor; a candidate stage can only lose
  // recall. The fallback must be exact, bitwise, and the stats must say
  // the LSH path never ran.
  const auto m = module_matrix(40, 96, 8, 55);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool pool(2);
  const auto exact =
      engine.top_k_neighbors(64, pool, 0, sm::TopKStrategy::kExact);
  sm::TopKStats stats;
  const auto approx = engine.top_k_neighbors(
      64, pool, 0, sm::TopKStrategy::kApprox, &stats);
  expect_tables_identical(exact, approx);
  EXPECT_EQ(stats.signatures_built, 0u);
  EXPECT_EQ(stats.exact_dot_fraction, 1.0);
}

}  // namespace
