// Tests for the GO substrate: DAG, OBO IO, annotations/propagation, GOLEM
// enrichment and the local exploration map.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "expr/synth.hpp"
#include "go/annotations.hpp"
#include "go/golem.hpp"
#include "go/local_map.hpp"
#include "go/obo_io.hpp"
#include "go/ontology.hpp"
#include "go/synth_ontology.hpp"
#include "render/framebuffer.hpp"
#include "util/error.hpp"

namespace {

namespace go = fv::go;
using go::Ontology;
using go::Term;
using go::TermIndex;

/// Small diamond DAG: root over {stress, metabolism}; "heat" is_a stress;
/// "both" is_a stress AND is_a metabolism (the multi-parent case).
std::shared_ptr<Ontology> diamond() {
  auto onto = std::make_shared<Ontology>();
  const auto root = onto->add_term({"GO:0000001", "biological_process",
                                    go::Namespace::kBiologicalProcess, false});
  const auto stress = onto->add_term({"GO:0000002", "response to stress",
                                      go::Namespace::kBiologicalProcess,
                                      false});
  const auto metabolism = onto->add_term({"GO:0000003", "metabolism",
                                          go::Namespace::kBiologicalProcess,
                                          false});
  const auto heat = onto->add_term({"GO:0000004", "response to heat",
                                    go::Namespace::kBiologicalProcess,
                                    false});
  const auto both = onto->add_term({"GO:0000005", "stress metabolism",
                                    go::Namespace::kBiologicalProcess,
                                    false});
  onto->add_is_a(stress, root);
  onto->add_is_a(metabolism, root);
  onto->add_is_a(heat, stress);
  onto->add_is_a(both, stress);
  onto->add_is_a(both, metabolism);
  return onto;
}

TEST(OntologyTest, BasicStructure) {
  const auto onto = diamond();
  EXPECT_EQ(onto->term_count(), 5u);
  EXPECT_EQ(onto->roots(), std::vector<TermIndex>{0});
  EXPECT_EQ(onto->parents(4).size(), 2u);
  EXPECT_EQ(onto->children(1).size(), 2u);
  EXPECT_EQ(*onto->find("GO:0000004"), 3u);
  EXPECT_FALSE(onto->find("GO:9999999").has_value());
}

TEST(OntologyTest, DuplicateAccessionThrows) {
  Ontology onto;
  onto.add_term({"GO:1", "a", go::Namespace::kBiologicalProcess, false});
  EXPECT_THROW(
      onto.add_term({"GO:1", "b", go::Namespace::kBiologicalProcess, false}),
      fv::InvalidArgument);
}

TEST(OntologyTest, SelfParentThrows) {
  Ontology onto;
  const auto t =
      onto.add_term({"GO:1", "a", go::Namespace::kBiologicalProcess, false});
  EXPECT_THROW(onto.add_is_a(t, t), fv::InvalidArgument);
}

TEST(OntologyTest, DuplicateEdgeIsMerged) {
  auto onto = diamond();
  const std::size_t before = onto->parents(3).size();
  const_cast<Ontology&>(*onto).add_is_a(3, 1);  // repeat heat -> stress
  EXPECT_EQ(onto->parents(3).size(), before);
}

TEST(OntologyTest, AncestorsFollowAllPaths) {
  const auto onto = diamond();
  auto ancestors = onto->ancestors(4);  // both
  std::sort(ancestors.begin(), ancestors.end());
  EXPECT_EQ(ancestors, (std::vector<TermIndex>{0, 1, 2}));
  EXPECT_TRUE(onto->ancestors(0).empty());
}

TEST(OntologyTest, DescendantsMirrorAncestors) {
  const auto onto = diamond();
  auto descendants = onto->descendants(1);  // stress
  std::sort(descendants.begin(), descendants.end());
  EXPECT_EQ(descendants, (std::vector<TermIndex>{3, 4}));
}

TEST(OntologyTest, DepthsAreLongestPaths) {
  const auto onto = diamond();
  const auto depths = onto->depths();
  EXPECT_EQ(depths[0], 0u);
  EXPECT_EQ(depths[1], 1u);
  EXPECT_EQ(depths[4], 2u);
}

TEST(OntologyTest, CycleDetected) {
  Ontology onto;
  const auto a =
      onto.add_term({"GO:1", "a", go::Namespace::kBiologicalProcess, false});
  const auto b =
      onto.add_term({"GO:2", "b", go::Namespace::kBiologicalProcess, false});
  onto.add_is_a(a, b);
  onto.add_is_a(b, a);
  EXPECT_THROW(onto.validate(), fv::ParseError);
}

TEST(OboIoTest, RoundTripPreservesStructure) {
  const auto original = diamond();
  const auto parsed = go::parse_obo(go::format_obo(*original));
  ASSERT_EQ(parsed.term_count(), original->term_count());
  for (TermIndex t = 0; t < parsed.term_count(); ++t) {
    EXPECT_EQ(parsed.term(t).id, original->term(t).id);
    EXPECT_EQ(parsed.term(t).name, original->term(t).name);
    // Parent sets must match (order may differ).
    auto a = parsed.parents(t);
    auto b = original->parents(t);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(OboIoTest, ParsesRealWorldFlavoredStanza) {
  const std::string obo =
      "format-version: 1.2\n"
      "date: 01:01:2007\n"
      "\n"
      "[Term]\n"
      "id: GO:0006950\n"
      "name: response to stress\n"
      "namespace: biological_process\n"
      "def: \"ignored\" [GOC:x]\n"
      "\n"
      "[Term]\n"
      "id: GO:0009408\n"
      "name: response to heat\n"
      "namespace: biological_process\n"
      "is_a: GO:0006950 ! response to stress\n"
      "\n"
      "[Typedef]\n"
      "id: part_of\n";
  const auto onto = go::parse_obo(obo);
  EXPECT_EQ(onto.term_count(), 2u);
  const auto heat = onto.find("GO:0009408");
  ASSERT_TRUE(heat.has_value());
  EXPECT_EQ(onto.parents(*heat).size(), 1u);
}

TEST(OboIoTest, MalformedInputsThrow) {
  EXPECT_THROW(go::parse_obo("[Term]\nname: no id\n"), fv::ParseError);
  EXPECT_THROW(go::parse_obo("[Term]\nid: GO:1\nis_a: GO:404\n"),
               fv::ParseError);
  EXPECT_THROW(go::parse_obo("[Term]\nid: GO:1\nnamespace: bogus\n"),
               fv::ParseError);
  EXPECT_THROW(go::parse_obo("[Term]\nid GO:1\n"), fv::ParseError);
}

TEST(AnnotationTest, DirectAnnotationBookkeeping) {
  const auto onto = diamond();
  go::AnnotationTable table(onto);
  table.annotate("HSP104", 3);
  table.annotate("HSP104", 3);  // idempotent
  table.annotate("HSP104", 4);
  table.annotate("CTT1", 3);
  EXPECT_EQ(table.gene_count(), 2u);
  EXPECT_EQ(table.annotation_count(3), 2u);
  EXPECT_EQ(table.annotation_count(0), 0u);
  EXPECT_EQ(table.terms_of("HSP104").size(), 2u);
  EXPECT_TRUE(table.terms_of("unknown").empty());
}

TEST(AnnotationTest, PropagationFollowsTruePathRule) {
  const auto onto = diamond();
  go::AnnotationTable table(onto);
  table.annotate("HSP104", 4);  // "both": ancestors are stress, metabolism, root
  const auto propagated = table.propagated();
  auto terms = propagated.terms_of("HSP104");
  std::sort(terms.begin(), terms.end());
  EXPECT_EQ(terms, (std::vector<TermIndex>{0, 1, 2, 4}));
  // Counts at ancestors include the propagated gene.
  EXPECT_EQ(propagated.annotation_count(0), 1u);
  EXPECT_EQ(propagated.annotation_count(1), 1u);
}

TEST(AnnotationTest, PropagationIsIdempotent) {
  const auto onto = diamond();
  go::AnnotationTable table(onto);
  table.annotate("A", 3);
  table.annotate("B", 2);
  const auto once = table.propagated();
  const auto twice = once.propagated();
  for (TermIndex t = 0; t < onto->term_count(); ++t) {
    EXPECT_EQ(once.annotation_count(t), twice.annotation_count(t));
  }
}

go::AnnotationTable enrichment_fixture(std::shared_ptr<Ontology> onto) {
  // Population of 20 genes: G0..G4 annotated to heat (3) — and via
  // propagation to stress (1) — G5..G9 directly to stress, G10..G19 to
  // metabolism (2). "Heat" is therefore strictly more specific than
  // "stress" for a heat-gene query.
  go::AnnotationTable table(std::move(onto));
  for (int i = 0; i < 5; ++i) {
    table.annotate("G" + std::to_string(i), 3);
  }
  for (int i = 5; i < 10; ++i) {
    table.annotate("G" + std::to_string(i), 1);
  }
  for (int i = 10; i < 20; ++i) {
    table.annotate("G" + std::to_string(i), 2);
  }
  return table.propagated();
}

TEST(GolemTest, FindsPlantedEnrichment) {
  const auto table = enrichment_fixture(diamond());
  // Query: 5 heat genes out of 5 -> heavily enriched for heat & stress.
  const std::vector<std::string> query{"G0", "G1", "G2", "G3", "G4"};
  const auto result = go::enrich(table, query);
  EXPECT_EQ(result.recognized_genes, 5u);
  ASSERT_FALSE(result.terms.empty());
  // Top term must be "response to heat" (index 3).
  EXPECT_EQ(result.terms[0].term, 3u);
  EXPECT_LT(result.terms[0].p_value, 1e-3);  // 1/C(20,5)
  EXPECT_EQ(result.terms[0].query_annotated, 5u);
  EXPECT_EQ(result.terms[0].population_annotated, 5u);
  EXPECT_GT(result.terms[0].fold_enrichment, 3.9);
}

TEST(GolemTest, RootIsNeverEnriched) {
  const auto table = enrichment_fixture(diamond());
  const std::vector<std::string> query{"G0", "G1", "G12"};
  const auto result = go::enrich(table, query);
  for (const auto& row : result.terms) {
    if (row.term == 0) {
      EXPECT_NEAR(row.p_value, 1.0, 1e-9);  // everyone has the root
    }
  }
}

TEST(GolemTest, CorrectionsOrderedSanely) {
  const auto table = enrichment_fixture(diamond());
  const std::vector<std::string> query{"G0", "G1", "G2"};
  const auto result = go::enrich(table, query);
  for (const auto& row : result.terms) {
    EXPECT_GE(row.p_bonferroni + 1e-15, row.p_value);
    EXPECT_GE(row.p_bonferroni + 1e-15, row.q_benjamini_hochberg);
    EXPECT_LE(row.q_benjamini_hochberg, 1.0);
  }
  // Result rows sorted ascending by p.
  for (std::size_t i = 1; i < result.terms.size(); ++i) {
    EXPECT_LE(result.terms[i - 1].p_value, result.terms[i].p_value + 1e-15);
  }
}

TEST(GolemTest, UnknownGenesReported) {
  const auto table = enrichment_fixture(diamond());
  const std::vector<std::string> query{"G0", "NOT_A_GENE"};
  const auto result = go::enrich(table, query);
  EXPECT_EQ(result.recognized_genes, 1u);
  ASSERT_EQ(result.unknown_genes.size(), 1u);
  EXPECT_EQ(result.unknown_genes[0], "NOT_A_GENE");
}

TEST(GolemTest, EmptyQueryGivesEmptyResult) {
  const auto table = enrichment_fixture(diamond());
  const auto result = go::enrich(table, {"NOPE1", "NOPE2"});
  EXPECT_EQ(result.recognized_genes, 0u);
  EXPECT_TRUE(result.terms.empty());
}

TEST(LocalMapTest, ClosureContainsAncestors) {
  const auto onto = diamond();
  const auto map = go::build_local_map(*onto, {4});  // focus on "both"
  std::set<TermIndex> included;
  for (const auto& node : map.nodes) included.insert(node.term);
  EXPECT_EQ(included, (std::set<TermIndex>{0, 1, 2, 4}));
  // Exactly one focus node.
  std::size_t focus_count = 0;
  for (const auto& node : map.nodes) {
    if (node.focus) ++focus_count;
  }
  EXPECT_EQ(focus_count, 1u);
}

TEST(LocalMapTest, EdgesStayWithinMap) {
  const auto onto = diamond();
  const auto map = go::build_local_map(*onto, {3, 4});
  for (const auto& edge : map.edges) {
    ASSERT_LT(edge.parent_node, map.nodes.size());
    ASSERT_LT(edge.child_node, map.nodes.size());
    // Parent layer strictly above child layer.
    EXPECT_LT(map.nodes[edge.parent_node].layer,
              map.nodes[edge.child_node].layer);
  }
}

TEST(LocalMapTest, SlotsUniquePerLayer) {
  const auto onto = diamond();
  const auto map = go::build_local_map(*onto, {3, 4});
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& node : map.nodes) {
    EXPECT_TRUE(seen.insert({node.layer, node.slot}).second);
  }
}

TEST(LocalMapTest, FromEnrichmentAttachesPValues) {
  const auto table = enrichment_fixture(diamond());
  const std::vector<std::string> query{"G0", "G1", "G2", "G3", "G4"};
  const auto enrichment = go::enrich(table, query);
  const auto map = go::build_local_map(table.ontology(), enrichment, 0.05);
  ASSERT_FALSE(map.nodes.empty());
  bool found_significant_focus = false;
  for (const auto& node : map.nodes) {
    if (node.focus && node.p_value < 0.05) found_significant_focus = true;
  }
  EXPECT_TRUE(found_significant_focus);
}

TEST(LocalMapTest, EmptyFocusGivesEmptyMap) {
  const auto onto = diamond();
  const auto map = go::build_local_map(*onto, {});
  EXPECT_TRUE(map.nodes.empty());
  EXPECT_TRUE(map.edges.empty());
}

TEST(LocalMapTest, DrawProducesPixels) {
  const auto onto = diamond();
  const auto map = go::build_local_map(*onto, {3, 4});
  fv::render::Framebuffer fb(400, 300);
  go::draw_local_map(fb, *onto, map, 0, 0, 400, 300);
  std::size_t lit = 0;
  for (const auto& p : fb.pixels()) {
    if (!(p == fv::render::colors::kBlack)) ++lit;
  }
  EXPECT_GT(lit, 500u);
}

TEST(SynthOntologyTest, ModulesGetEnrichableTerms) {
  const auto genome =
      fv::expr::make_genome(fv::expr::GenomeSpec::yeast_like(600), 3);
  const auto synth = go::make_synth_ontology(genome);
  ASSERT_EQ(synth.module_terms.size(), genome.module_names().size());
  // Population covers the full genome.
  EXPECT_EQ(synth.propagated.gene_count(), genome.gene_count());

  // GOLEM on the ESR_UP members must rank the planted term first.
  std::vector<std::string> query;
  for (const std::size_t g : genome.module_members("ESR_UP")) {
    query.push_back(genome.gene(g).systematic_name);
  }
  const auto result = go::enrich(synth.propagated, query);
  ASSERT_FALSE(result.terms.empty());
  EXPECT_EQ(result.terms[0].term, synth.module_terms.at("ESR_UP"));
  EXPECT_LT(result.terms[0].q_benjamini_hochberg, 1e-6);
}

TEST(SynthOntologyTest, OntologyIsValidDag) {
  const auto genome =
      fv::expr::make_genome(fv::expr::GenomeSpec::yeast_like(200), 5);
  const auto synth = go::make_synth_ontology(genome);
  EXPECT_NO_THROW(synth.ontology->validate());
  EXPECT_EQ(synth.ontology->roots().size(), 1u);
}

TEST(SynthOntologyTest, DeterministicForSeed) {
  const auto genome =
      fv::expr::make_genome(fv::expr::GenomeSpec::yeast_like(200), 5);
  go::SynthOntologySpec spec;
  spec.seed = 11;
  const auto a = go::make_synth_ontology(genome, spec);
  const auto b = go::make_synth_ontology(genome, spec);
  EXPECT_EQ(a.ontology->term_count(), b.ontology->term_count());
  EXPECT_EQ(a.module_terms, b.module_terms);
  for (go::TermIndex t = 0; t < a.ontology->term_count(); ++t) {
    EXPECT_EQ(a.propagated.annotation_count(t),
              b.propagated.annotation_count(t));
  }
}

}  // namespace
