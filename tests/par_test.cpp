// Tests for the thread-pool parallelism substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "par/thread_pool.hpp"
#include "util/error.hpp"

namespace {

using fv::par::ThreadPool;

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ThreadCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), fv::InvalidArgument);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPoolTest, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.stop();  // drains, joins, and closes the pool for good
  EXPECT_EQ(counter.load(), 1);
  // A task enqueued now would never run — it must throw, not vanish.
  EXPECT_THROW(pool.submit([&] { counter.fetch_add(1); }),
               fv::InvalidArgument);
  pool.stop();  // idempotent; the destructor will call it again too
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  fv::par::parallel_for(pool, 0, 1000, 1,
                        [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  fv::par::parallel_for(pool, 5, 5, 1, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, RespectsOffsetRange) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  fv::par::parallel_for(pool, 10, 20, 1, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelForTest, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      fv::par::parallel_for(pool, 0, 100, 1,
                            [&](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> counter{0};
  fv::par::parallel_for(pool, 0, 10, 1,
                        [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, SharedPoolOverloadWorks) {
  std::atomic<int> counter{0};
  fv::par::parallel_for(0, 64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelReduceTest, SumsDeterministically) {
  ThreadPool pool(4);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  const double total = fv::par::parallel_reduce(
      pool, 0, values.size(), 64,
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t i = begin; i < end; ++i) partial += values[i];
        return partial;
      },
      [](double a, double b) { return a + b; }, 0.0);
  EXPECT_DOUBLE_EQ(total, 10000.0 * 9999.0 / 2.0);
}

TEST(ParallelReduceTest, EmptyRangeGivesIdentity) {
  ThreadPool pool(2);
  const double result = fv::par::parallel_reduce(
      pool, 3, 3, 1, [](std::size_t, std::size_t) { return 99.0; },
      [](double a, double b) { return a + b; }, -1.0);
  EXPECT_DOUBLE_EQ(result, -1.0);
}

// Property sweep: parallel_for result equals serial result for varying
// range sizes and grains.
class ParallelForPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelForPropertyTest, MatchesSerialSum) {
  const auto [size, grain] = GetParam();
  ThreadPool pool(3);
  std::vector<long> out(static_cast<std::size_t>(size), 0);
  fv::par::parallel_for(pool, 0, static_cast<std::size_t>(size),
                        static_cast<std::size_t>(grain),
                        [&](std::size_t i) {
                          out[i] = static_cast<long>(i * i);
                        });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<long>(i * i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndGrains, ParallelForPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 64, 1000),
                       ::testing::Values(1, 3, 16, 1024)));

}  // namespace
