// Unit tests for the expr data model: matrix, tree, dataset, normalization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "expr/dataset.hpp"
#include "expr/expression_matrix.hpp"
#include "expr/normalize.hpp"
#include "expr/tree.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using fv::expr::Dataset;
using fv::expr::ExpressionMatrix;
using fv::expr::GeneInfo;
using fv::expr::HierTree;

const float kMissing = fv::stats::missing_value();

ExpressionMatrix small_matrix() {
  ExpressionMatrix m(3, 4);
  float v = 0.0f;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m.set(r, c, v += 1.0f);
  }
  return m;
}

Dataset small_dataset() {
  std::vector<GeneInfo> genes{
      {"YAL001C", "TFC3", "transcription factor TFIIIC"},
      {"YAL002W", "VPS8", "vacuolar protein sorting"},
      {"YBR072W", "HSP26", "small heat shock protein"},
  };
  std::vector<std::string> conditions{"heat_5", "heat_10", "cold_5",
                                      "cold_10"};
  return Dataset("demo", std::move(genes), std::move(conditions),
                 small_matrix());
}

TEST(ExpressionMatrixTest, DefaultConstructedIsEmpty) {
  ExpressionMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(ExpressionMatrixTest, FreshMatrixIsAllMissing) {
  ExpressionMatrix m(2, 3);
  EXPECT_DOUBLE_EQ(m.missing_fraction(), 1.0);
}

TEST(ExpressionMatrixTest, SetGetRoundTrip) {
  ExpressionMatrix m(2, 2);
  m.set(1, 0, 3.5f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.5f);
  EXPECT_TRUE(fv::stats::is_missing(m.at(0, 0)));
}

TEST(ExpressionMatrixTest, RowSpanAliasesStorage) {
  ExpressionMatrix m(2, 3, 0.0f);
  auto row = m.row(1);
  row[2] = 9.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 9.0f);
}

TEST(ExpressionMatrixTest, ColumnExtraction) {
  const auto m = small_matrix();
  const auto col = m.column(2);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FLOAT_EQ(col[0], 3.0f);
  EXPECT_FLOAT_EQ(col[1], 7.0f);
  EXPECT_FLOAT_EQ(col[2], 11.0f);
}

TEST(ExpressionMatrixTest, OutOfRangeThrows) {
  ExpressionMatrix m(2, 2, 0.0f);
  EXPECT_THROW(m.at(2, 0), fv::InvalidArgument);
  EXPECT_THROW(m.at(0, 2), fv::InvalidArgument);
  EXPECT_THROW(m.row(5), fv::InvalidArgument);
  EXPECT_THROW(m.column(5), fv::InvalidArgument);
}

TEST(HierTreeTest, BuildAndQuerySmallTree) {
  // Leaves 0,1,2,3; merge (0,1)->4, (2,3)->5, (4,5)->6.
  HierTree tree(4);
  const int a = tree.add_node(0, 1, 0.9);
  const int b = tree.add_node(2, 3, 0.8);
  const int root = tree.add_node(a, b, 0.2);
  EXPECT_EQ(tree.root(), root);
  EXPECT_TRUE(tree.is_complete());
  EXPECT_EQ(tree.node_count(), 7u);
  EXPECT_TRUE(tree.is_leaf(3));
  EXPECT_FALSE(tree.is_leaf(4));
  EXPECT_DOUBLE_EQ(tree.node(a).similarity, 0.9);
}

TEST(HierTreeTest, LeafOrderIsLeftToRight) {
  HierTree tree(4);
  const int a = tree.add_node(1, 0, 0.9);
  const int b = tree.add_node(3, 2, 0.8);
  tree.add_node(a, b, 0.1);
  const auto order = tree.leaf_order();
  const std::vector<std::size_t> expected{1, 0, 3, 2};
  EXPECT_EQ(order, expected);
}

TEST(HierTreeTest, LeavesUnderSubtree) {
  HierTree tree(4);
  const int a = tree.add_node(0, 1, 0.9);
  const int b = tree.add_node(2, 3, 0.8);
  tree.add_node(a, b, 0.1);
  const auto leaves = tree.leaves_under(b);
  const std::vector<std::size_t> expected{2, 3};
  EXPECT_EQ(leaves, expected);
}

TEST(HierTreeTest, IncompleteTreeDetected) {
  HierTree tree(3);
  tree.add_node(0, 1, 0.5);
  EXPECT_FALSE(tree.is_complete());  // leaf 2 never merged
}

TEST(HierTreeTest, ReusedChildDetected) {
  HierTree tree(3);
  tree.add_node(0, 1, 0.5);
  tree.add_node(0, 2, 0.4);  // leaf 0 used twice
  EXPECT_FALSE(tree.is_complete());
}

TEST(HierTreeTest, InvalidChildrenThrow) {
  HierTree tree(3);
  EXPECT_THROW(tree.add_node(0, 0, 0.5), fv::InvalidArgument);
  EXPECT_THROW(tree.add_node(0, 7, 0.5), fv::InvalidArgument);
  EXPECT_THROW(tree.add_node(-1, 1, 0.5), fv::InvalidArgument);
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.name(), "demo");
  EXPECT_EQ(ds.gene_count(), 3u);
  EXPECT_EQ(ds.condition_count(), 4u);
  EXPECT_EQ(ds.gene(2).common_name, "HSP26");
  EXPECT_EQ(ds.condition(1), "heat_10");
  EXPECT_FLOAT_EQ(ds.profile(1)[0], 5.0f);
}

TEST(DatasetTest, MismatchedShapesThrow) {
  std::vector<GeneInfo> genes{{"YAL001C", "", ""}};
  std::vector<std::string> conditions{"c1"};
  EXPECT_THROW(Dataset("bad", genes, conditions, ExpressionMatrix(2, 1)),
               fv::InvalidArgument);
  EXPECT_THROW(Dataset("bad", genes, conditions, ExpressionMatrix(1, 2)),
               fv::InvalidArgument);
}

TEST(DatasetTest, RowLookupBySystematicAndCommonName) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.row_of("YAL002W"), std::size_t{1});
  EXPECT_EQ(ds.row_of("vps8"), std::size_t{1});
  EXPECT_EQ(ds.row_of(" HSP26 "), std::size_t{2});
  EXPECT_FALSE(ds.row_of("nonexistent").has_value());
}

TEST(DatasetTest, AnnotationSearchIsCaseInsensitiveSubstring) {
  const Dataset ds = small_dataset();
  const auto hits = ds.search_annotation("heat shock");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);
  EXPECT_TRUE(ds.search_annotation("").empty());
  EXPECT_EQ(ds.search_annotation("YAL").size(), 2u);
}

TEST(DatasetTest, DisplayOrderWithoutTreeIsIdentity) {
  const Dataset ds = small_dataset();
  const std::vector<std::size_t> expected{0, 1, 2};
  EXPECT_EQ(ds.display_order(), expected);
}

TEST(DatasetTest, DisplayOrderFollowsAttachedTree) {
  Dataset ds = small_dataset();
  HierTree tree(3);
  const int a = tree.add_node(2, 0, 0.7);
  tree.add_node(a, 1, 0.3);
  ds.attach_gene_tree(std::move(tree));
  const std::vector<std::size_t> expected{2, 0, 1};
  EXPECT_EQ(ds.display_order(), expected);
}

TEST(DatasetTest, AttachingWrongSizedTreeThrows) {
  Dataset ds = small_dataset();
  HierTree tree(2);
  tree.add_node(0, 1, 0.5);
  EXPECT_THROW(ds.attach_gene_tree(std::move(tree)), fv::InvalidArgument);
}

TEST(DatasetTest, AttachingIncompleteTreeThrows) {
  Dataset ds = small_dataset();
  HierTree tree(3);
  tree.add_node(0, 1, 0.5);  // leaf 2 dangling
  EXPECT_THROW(ds.attach_gene_tree(std::move(tree)), fv::InvalidArgument);
}

TEST(NormalizeTest, Log2TransformPresentValues) {
  ExpressionMatrix m(1, 3);
  m.set(0, 0, 1.0f);
  m.set(0, 1, 8.0f);
  // cell (0,2) stays missing
  fv::expr::log2_transform(m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 3.0f);
  EXPECT_TRUE(fv::stats::is_missing(m.at(0, 2)));
}

TEST(NormalizeTest, Log2RejectsNonPositive) {
  ExpressionMatrix m(1, 1, -1.0f);
  EXPECT_THROW(fv::expr::log2_transform(m), fv::InvalidArgument);
}

TEST(NormalizeTest, MedianCenterRows) {
  ExpressionMatrix m(1, 3);
  m.set(0, 0, 1.0f);
  m.set(0, 1, 2.0f);
  m.set(0, 2, 9.0f);
  fv::expr::median_center_rows(m);
  EXPECT_FLOAT_EQ(m.at(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 7.0f);
}

TEST(NormalizeTest, ZNormalizeRowsGivesUnitVariance) {
  auto m = small_matrix();
  fv::expr::z_normalize_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto mom = fv::stats::moments(m.row(r));
    EXPECT_NEAR(mom.mean, 0.0, 1e-6);
    EXPECT_NEAR(mom.variance, 1.0, 1e-5);
  }
}

TEST(NormalizeTest, MeanImputeFillsAllCells) {
  ExpressionMatrix m(2, 3);
  m.set(0, 0, 2.0f);
  m.set(0, 1, 4.0f);
  // row 1 entirely missing
  const std::size_t imputed = fv::expr::mean_impute(m);
  EXPECT_EQ(imputed, 4u);
  EXPECT_FLOAT_EQ(m.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 0.0f);
  EXPECT_DOUBLE_EQ(m.missing_fraction(), 0.0);
}


TEST(KnnImputeTest, FillsAllMissingCells) {
  ExpressionMatrix m(4, 3);
  // Three complete rows forming two groups plus one row with a hole.
  const float rows[4][3] = {{1, 2, 3}, {1.1f, 2.1f, 3.1f},
                            {10, 20, 30}, {1.05f, kMissing, 3.05f}};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      if (!fv::stats::is_missing(rows[r][c])) m.set(r, c, rows[r][c]);
    }
  }
  const std::size_t imputed = fv::expr::knn_impute(m, 2);
  EXPECT_EQ(imputed, 1u);
  EXPECT_DOUBLE_EQ(m.missing_fraction(), 0.0);
  // The filled value must come from the nearby rows (≈2.05), not row 2.
  EXPECT_NEAR(m.at(3, 1), 2.05f, 0.2f);
}

TEST(KnnImputeTest, IsOrderIndependent) {
  // Two rows with holes must not see each other's imputed values.
  ExpressionMatrix m(3, 2);
  m.set(0, 0, 1.0f);
  m.set(0, 1, 2.0f);
  m.set(1, 0, 1.0f);  // (1,1) missing
  m.set(2, 1, 2.0f);  // (2,0) missing
  fv::expr::knn_impute(m, 5);
  EXPECT_DOUBLE_EQ(m.missing_fraction(), 0.0);
}

TEST(KnnImputeTest, FallsBackToRowMeanWithoutNeighbors) {
  ExpressionMatrix m(1, 3);
  m.set(0, 0, 4.0f);
  m.set(0, 2, 6.0f);
  const std::size_t imputed = fv::expr::knn_impute(m, 3);
  EXPECT_EQ(imputed, 1u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 5.0f);  // row mean
}

TEST(KnnImputeTest, RecoversPlantedValuesBetterThanMean) {
  // Correlated rows: knn should reconstruct masked values more accurately
  // than the row-mean fallback.
  fv::Rng rng(77);
  const std::size_t rows = 40, cols = 12;
  ExpressionMatrix truth(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double scale = 0.5 + 0.1 * static_cast<double>(r % 4);
    for (std::size_t c = 0; c < cols; ++c) {
      truth.set(r, c, static_cast<float>(
          scale * std::sin(0.6 * static_cast<double>(c)) +
          rng.normal(0.0, 0.02)));
    }
  }
  ExpressionMatrix masked_knn = truth;
  ExpressionMatrix masked_mean = truth;
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  for (std::size_t i = 0; i < 30; ++i) {
    const auto r = static_cast<std::size_t>(rng.uniform_u64(rows));
    const auto c = static_cast<std::size_t>(rng.uniform_u64(cols));
    masked_knn.set(r, c, fv::stats::missing_value());
    masked_mean.set(r, c, fv::stats::missing_value());
    holes.emplace_back(r, c);
  }
  fv::expr::knn_impute(masked_knn, 5);
  fv::expr::mean_impute(masked_mean);
  double err_knn = 0.0, err_mean = 0.0;
  for (const auto& [r, c] : holes) {
    err_knn += std::abs(masked_knn.at(r, c) - truth.at(r, c));
    err_mean += std::abs(masked_mean.at(r, c) - truth.at(r, c));
  }
  EXPECT_LT(err_knn, err_mean * 0.7)
      << "knn=" << err_knn << " mean=" << err_mean;
}

TEST(KnnImputeTest, InvalidKThrows) {
  ExpressionMatrix m(2, 2, 1.0f);
  EXPECT_THROW(fv::expr::knn_impute(m, 0), fv::InvalidArgument);
}

namespace seed_reference {

/// The seed's scalar kNN imputation, kept verbatim as the regression
/// reference for the engine-backed top-k path: candidate selection over
/// coverage-scaled Euclidean distance (rows sharing < 2 columns excluded),
/// 1/distance weights, row-mean fallback.
double impute_distance(std::span<const float> a, std::span<const float> b) {
  double sum = 0.0;
  std::size_t shared = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fv::stats::is_missing(a[i]) || fv::stats::is_missing(b[i])) continue;
    const double diff = static_cast<double>(a[i]) - b[i];
    sum += diff * diff;
    ++shared;
  }
  if (shared < 2) return std::numeric_limits<double>::infinity();
  return std::sqrt(sum * static_cast<double>(a.size()) /
                   static_cast<double>(shared));
}

std::size_t knn_impute(ExpressionMatrix& matrix, std::size_t k) {
  const ExpressionMatrix original = matrix;
  std::size_t imputed = 0;
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    std::vector<std::size_t> holes;
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      if (fv::stats::is_missing(original.at(r, c))) holes.push_back(c);
    }
    if (holes.empty()) continue;
    std::vector<std::pair<double, std::size_t>> neighbors;
    for (std::size_t other = 0; other < original.rows(); ++other) {
      if (other == r) continue;
      const double d = impute_distance(original.row(r), original.row(other));
      if (std::isinf(d)) continue;
      neighbors.emplace_back(d, other);
    }
    const std::size_t keep = std::min(k, neighbors.size());
    std::partial_sort(neighbors.begin(),
                      neighbors.begin() + static_cast<long>(keep),
                      neighbors.end());
    neighbors.resize(keep);
    const double row_mean = fv::stats::mean(original.row(r));
    const float fallback =
        std::isnan(row_mean) ? 0.0f : static_cast<float>(row_mean);
    for (const std::size_t c : holes) {
      double weighted = 0.0;
      double weight_total = 0.0;
      for (const auto& [distance, other] : neighbors) {
        const float v = original.at(other, c);
        if (fv::stats::is_missing(v)) continue;
        const double w = 1.0 / std::max(distance, 1e-9);
        weighted += w * v;
        weight_total += w;
      }
      matrix.set(r, c, weight_total > 0.0
                           ? static_cast<float>(weighted / weight_total)
                           : fallback);
      ++imputed;
    }
  }
  return imputed;
}

}  // namespace seed_reference

TEST(KnnImputeTest, MatchesSeedReferenceImplementation) {
  // The engine-backed path must reproduce the seed's imputed values: same
  // neighbor selection (coverage-scaled Euclidean, < 2 shared columns
  // excluded, ties by row index), same 1/distance weighting, same
  // fallbacks. Tolerance covers the float-vs-double distance weights only.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const std::size_t rows = 50 + 7 * seed, cols = 11;
    ExpressionMatrix m(rows, cols);
    fv::Rng gen(9100 + seed);
    for (std::size_t r = 0; r < rows; ++r) {
      const double scale = 0.5 + 0.2 * static_cast<double>(r % 5);
      for (std::size_t c = 0; c < cols; ++c) {
        if (gen.uniform() < 0.12) continue;  // missing
        m.set(r, c, static_cast<float>(
                        scale * std::sin(0.45 * static_cast<double>(c)) +
                        gen.normal(0.0, 0.1)));
      }
    }
    // Edge rows: entirely missing (row-mean fallback -> 0), and a
    // one-value row (never a neighbor, mean fallback for itself).
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(0, c, kMissing);
      if (c > 0) m.set(1, c, kMissing);
    }
    m.set(1, 0, 2.5f);

    ExpressionMatrix engine_path = m;
    ExpressionMatrix reference_path = m;
    const std::size_t imputed = fv::expr::knn_impute(engine_path, 6);
    const std::size_t expected =
        seed_reference::knn_impute(reference_path, 6);
    EXPECT_EQ(imputed, expected);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_NEAR(engine_path.at(r, c), reference_path.at(r, c), 1e-4)
            << "seed " << seed << " cell (" << r << ", " << c << ")";
      }
    }
  }
}

}  // namespace
