// Tests for ForestView's core: gene catalog, merged dataset interface,
// selection/synchronization, session operations and frame rendering.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "core/app.hpp"
#include "core/gene_catalog.hpp"
#include "core/merged.hpp"
#include "core/session.hpp"
#include "core/sync.hpp"
#include "expr/synth.hpp"
#include "spell/spell.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace {

namespace co = fv::core;
namespace ex = fv::expr;

/// Two tiny hand-built datasets with partially overlapping genes in
/// different orders plus aliases.
std::vector<ex::Dataset> tiny_datasets() {
  std::vector<ex::GeneInfo> genes_a{
      {"YAL001C", "TFC3", "transcription"},
      {"YBR072W", "HSP26", "heat shock protein"},
      {"YGR192C", "TDH3", "glycolysis"},
  };
  ex::ExpressionMatrix ma(3, 2);
  ma.set(0, 0, 1.0f);
  ma.set(0, 1, 2.0f);
  ma.set(1, 0, 3.0f);
  ma.set(1, 1, 4.0f);
  ma.set(2, 0, 5.0f);
  ma.set(2, 1, 6.0f);
  std::vector<ex::GeneInfo> genes_b{
      {"YGR192C", "TDH3", "glycolysis"},
      {"YDL229W", "SSB1", "chaperone"},
      {"YBR072W", "HSP26", "heat shock protein"},
  };
  ex::ExpressionMatrix mb(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      mb.set(r, c, static_cast<float>(10 * r + c));
    }
  }
  std::vector<ex::Dataset> datasets;
  datasets.emplace_back("alpha", genes_a,
                        std::vector<std::string>{"c1", "c2"}, std::move(ma));
  datasets.emplace_back("beta", genes_b,
                        std::vector<std::string>{"k1", "k2", "k3"},
                        std::move(mb));
  return datasets;
}

TEST(GeneCatalogTest, UnionAndAliases) {
  const auto datasets = tiny_datasets();
  const co::GeneCatalog catalog(datasets);
  EXPECT_EQ(catalog.gene_count(), 4u);  // union of 3 + 3 with 2 shared
  EXPECT_EQ(catalog.dataset_count(), 2u);
  // Lookup by systematic and common name, case-insensitive.
  const auto by_systematic = catalog.find("YBR072W");
  const auto by_common = catalog.find("hsp26");
  ASSERT_TRUE(by_systematic.has_value());
  EXPECT_EQ(*by_systematic, *by_common);
  EXPECT_FALSE(catalog.find("nonexistent").has_value());
}

TEST(GeneCatalogTest, RowMappingBothWays) {
  const auto datasets = tiny_datasets();
  const co::GeneCatalog catalog(datasets);
  const auto hsp = *catalog.find("HSP26");
  EXPECT_EQ(catalog.row_in(0, hsp), std::size_t{1});
  EXPECT_EQ(catalog.row_in(1, hsp), std::size_t{2});
  const auto tfc3 = *catalog.find("TFC3");
  EXPECT_EQ(catalog.row_in(0, tfc3), std::size_t{0});
  EXPECT_FALSE(catalog.row_in(1, tfc3).has_value());
  EXPECT_EQ(catalog.id_of_row(1, 2), hsp);
  EXPECT_EQ(catalog.datasets_measuring(hsp), 2u);
  EXPECT_EQ(catalog.datasets_measuring(tfc3), 1u);
}

TEST(MergedInterfaceTest, ThreeDimensionalAccess) {
  const auto datasets = tiny_datasets();
  co::MergedDatasetInterface merged(&datasets);
  const auto hsp = *merged.catalog().find("HSP26");
  // alpha row 1, condition 1 -> 4.0; beta row 2, condition 0 -> 20.
  EXPECT_FLOAT_EQ(*merged.value(0, hsp, 1), 4.0f);
  EXPECT_FLOAT_EQ(*merged.value(1, hsp, 0), 20.0f);
  const auto tfc3 = *merged.catalog().find("TFC3");
  EXPECT_FALSE(merged.value(1, tfc3, 0).has_value());
  EXPECT_EQ(merged.total_measurements(), 3u * 2u + 3u * 3u);
}

TEST(MergedInterfaceTest, RowsForScansAcrossDatasets) {
  const auto datasets = tiny_datasets();
  co::MergedDatasetInterface merged(&datasets);
  const auto tdh3 = *merged.catalog().find("TDH3");
  const auto rows = merged.rows_for(tdh3);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(*rows[0], 2u);
  EXPECT_EQ(*rows[1], 0u);
}

TEST(MergedInterfaceTest, FindAndSearch) {
  const auto datasets = tiny_datasets();
  co::MergedDatasetInterface merged(&datasets);
  const auto found =
      merged.find_genes_by_name({"TFC3", "nope", "hsp26", "TFC3"});
  EXPECT_EQ(found.size(), 2u);  // dedup + unknown skipped
  const auto heat = merged.search_annotation("heat shock");
  ASSERT_EQ(heat.size(), 1u);
  EXPECT_EQ(heat[0], *merged.catalog().find("HSP26"));
  // SSB1 only exists in beta; the search must reach it.
  EXPECT_EQ(merged.search_annotation("chaperone").size(), 1u);
}

TEST(MergedInterfaceTest, ExportGeneListAndMerged) {
  const auto datasets = tiny_datasets();
  co::MergedDatasetInterface merged(&datasets);
  const auto ids = merged.find_genes_by_name({"HSP26", "TFC3"});
  const auto set = merged.export_gene_list(ids, "picks", "demo");
  EXPECT_EQ(set.genes,
            (std::vector<std::string>{"YBR072W", "YAL001C"}));

  const auto exported = merged.export_merged(ids, "merged");
  EXPECT_EQ(exported.gene_count(), 2u);
  EXPECT_EQ(exported.condition_count(), 5u);  // 2 + 3
  EXPECT_EQ(exported.condition(0), "alpha::c1");
  EXPECT_EQ(exported.condition(2), "beta::k1");
  // HSP26 row: alpha values then beta values.
  const auto hsp_row = *exported.row_of("HSP26");
  EXPECT_FLOAT_EQ(exported.values().at(hsp_row, 0), 3.0f);
  EXPECT_FLOAT_EQ(exported.values().at(hsp_row, 2), 20.0f);
  // TFC3 absent in beta -> missing cells there.
  const auto tfc_row = *exported.row_of("TFC3");
  EXPECT_TRUE(fv::stats::is_missing(exported.values().at(tfc_row, 2)));
}

TEST(MergedInterfaceTest, OrderDatasetsPrefersCoherentCoverage) {
  // Build a compendium where ESR genes are coherent in stress data and
  // incoherent in noise data.
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(300);
  spec.stress_datasets = 1;
  spec.nutrient_datasets = 0;
  spec.knockout_datasets = 0;
  spec.noise_datasets = 1;
  spec.seed = 5;
  auto compendium = ex::make_compendium(spec);
  co::MergedDatasetInterface merged(&compendium.datasets);
  std::vector<co::GeneId> esr;
  for (const std::size_t g : compendium.genome.module_members("ESR_UP")) {
    if (const auto id =
            merged.catalog().find(compendium.genome.gene(g).systematic_name);
        id.has_value()) {
      esr.push_back(*id);
    }
  }
  const auto order = merged.order_datasets(esr);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(compendium.datasets[order[0]].name(), "stress_1");
}

co::Session make_session() { return co::Session(tiny_datasets()); }

TEST(SelectionTest, OrderedDeduplicated) {
  co::SelectionModel selection;
  selection.set({3, 1, 3, 2});
  EXPECT_EQ(selection.ordered(), (std::vector<co::GeneId>{3, 1, 2}));
  EXPECT_TRUE(selection.contains(1));
  EXPECT_FALSE(selection.contains(7));
  selection.add(7);
  EXPECT_TRUE(selection.contains(7));
  selection.clear();
  EXPECT_TRUE(selection.empty());
}

TEST(SyncTest, SynchronizedRowsAlignAcrossPanes) {
  const auto datasets = tiny_datasets();
  co::MergedDatasetInterface merged(&datasets);
  co::SyncController sync(&merged);
  co::SelectionModel selection;
  selection.set({*merged.catalog().find("HSP26"),
                 *merged.catalog().find("TFC3"),
                 *merged.catalog().find("TDH3")});
  ASSERT_TRUE(sync.synchronized());
  const auto rows_a = sync.zoom_rows(0, selection);
  const auto rows_b = sync.zoom_rows(1, selection);
  ASSERT_EQ(rows_a.size(), 3u);
  ASSERT_EQ(rows_b.size(), 3u);
  // Same gene sequence in both panes (the alignment invariant).
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rows_a[i].gene, rows_b[i].gene);
  }
  // TFC3 is missing in beta: gap in pane b, present in pane a.
  EXPECT_TRUE(rows_a[1].row.has_value());
  EXPECT_FALSE(rows_b[1].row.has_value());
}

TEST(SyncTest, UnsynchronizedUsesDatasetOrderWithoutGaps) {
  const auto datasets = tiny_datasets();
  co::MergedDatasetInterface merged(&datasets);
  co::SyncController sync(&merged);
  sync.set_synchronized(false);
  co::SelectionModel selection;
  selection.set({*merged.catalog().find("HSP26"),
                 *merged.catalog().find("TFC3"),
                 *merged.catalog().find("TDH3")});
  const auto rows_b = sync.zoom_rows(1, selection);
  ASSERT_EQ(rows_b.size(), 2u);  // TFC3 not measured in beta: no gap row
  // beta's own order: TDH3 (row 0) before HSP26 (row 2).
  EXPECT_EQ(rows_b[0].row, std::size_t{0});
  EXPECT_EQ(rows_b[1].row, std::size_t{2});
}

TEST(SessionTest, SelectRegionPropagatesAcrossDatasets) {
  auto session = make_session();
  // alpha display order is file order; select rows 1..2 (HSP26, TDH3).
  session.select_region(0, 1, 2);
  EXPECT_EQ(session.selection().size(), 2u);
  const auto rows_b = session.sync().zoom_rows(1, session.selection());
  ASSERT_EQ(rows_b.size(), 2u);
  EXPECT_TRUE(rows_b[0].row.has_value());  // HSP26 in beta
  EXPECT_TRUE(rows_b[1].row.has_value());  // TDH3 in beta
}

TEST(SessionTest, SelectionOpsAndLog) {
  auto session = make_session();
  EXPECT_EQ(session.select_by_names({"HSP26", "missing"}), 1u);
  EXPECT_EQ(session.select_by_annotation("glycolysis"), 1u);
  session.toggle_sync();
  EXPECT_FALSE(session.sync().synchronized());
  session.toggle_sync();
  session.scroll_to(5);
  EXPECT_EQ(session.sync().scroll(), 5u);
  session.clear_selection();
  EXPECT_EQ(session.operation_count(), 6u);
  EXPECT_NE(session.event_log()[0].find("select_by_names"),
            std::string::npos);
}

TEST(SessionTest, OrderPanesValidatesPermutation) {
  auto session = make_session();
  session.order_panes({1, 0});
  EXPECT_EQ(session.pane_order(), (std::vector<std::size_t>{1, 0}));
  EXPECT_THROW(session.order_panes({0, 0}), fv::InvalidArgument);
  EXPECT_THROW(session.order_panes({0}), fv::InvalidArgument);
}

TEST(SessionTest, ExportSelectionRoundTrip) {
  auto session = make_session();
  session.select_by_names({"HSP26", "TDH3"});
  const auto set = session.export_selection("picks");
  EXPECT_EQ(set.genes.size(), 2u);
  const auto merged_export = session.export_merged_selection("sub");
  EXPECT_EQ(merged_export.gene_count(), 2u);
  EXPECT_EQ(merged_export.condition_count(), 5u);
}

TEST(SessionTest, AddDatasetPreservesSelectionByName) {
  auto session = make_session();
  session.select_by_names({"HSP26"});
  // Load the exported selection back in as a new dataset (paper workflow).
  auto exported = session.export_merged_selection("subset");
  session.add_dataset(std::move(exported));
  EXPECT_EQ(session.dataset_count(), 3u);
  EXPECT_EQ(session.pane_order().size(), 3u);
  ASSERT_EQ(session.selection().size(), 1u);
  EXPECT_EQ(session.merged().catalog().name(session.selection().ordered()[0]),
            "YBR072W");
  // The new dataset participates in sync.
  const auto rows = session.sync().zoom_rows(2, session.selection());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].row.has_value());
}

TEST(SessionTest, PrefsPerDatasetAndAll) {
  auto session = make_session();
  session.prefs(0).contrast = 4.0;
  EXPECT_DOUBLE_EQ(session.prefs(0).contrast, 4.0);
  EXPECT_DOUBLE_EQ(session.prefs(1).contrast, 2.0);
  co::DisplayPrefs all;
  all.scheme = fv::render::ColorScheme::kBlueYellow;
  session.set_prefs_all(all);
  EXPECT_EQ(session.prefs(1).scheme, fv::render::ColorScheme::kBlueYellow);
}

TEST(SessionTest, SharedCompendiumSessionsAliasOneVector) {
  const auto shared =
      std::make_shared<const std::vector<ex::Dataset>>(tiny_datasets());
  co::Session a(shared);
  co::Session b(shared);
  EXPECT_TRUE(a.shares_datasets());
  // Both sessions read the SAME vector — aliased, not copied.
  EXPECT_EQ(&a.datasets(), shared.get());
  EXPECT_EQ(&b.datasets(), shared.get());
  // Per-session state stays private: selecting in one leaves the other.
  a.select_by_names({"HSP26"});
  EXPECT_EQ(a.selection().size(), 1u);
  EXPECT_EQ(b.selection().size(), 0u);
  // The shared compendium is read-only by construction.
  EXPECT_THROW(a.add_dataset(tiny_datasets()[0]), fv::InvalidArgument);
}

// The serving layer's aliasing pattern, pinned under TSan (this suite runs
// in CI's tsan leg): two sessions over ONE shared dataset vector, one
// thread rendering frames while the other runs SPELL over the same aliased
// datasets. Read-only concurrent access must be race-free with no
// compendium lock.
TEST(SessionTest, SharedSessionsConcurrentRenderAndSpellAreRaceFree) {
  const auto shared =
      std::make_shared<const std::vector<ex::Dataset>>(tiny_datasets());
  co::Session render_session(shared);
  co::Session spell_session(shared);
  render_session.select_region(0, 0, 3);

  std::thread renderer([&render_session] {
    for (int i = 0; i < 8; ++i) {
      fv::render::Framebuffer fb(400, 300);
      fv::render::FramebufferCanvas canvas(fb);
      co::FrameConfig config;
      config.width = 400;
      config.height = 300;
      const auto info = co::render_frame(render_session, canvas, config);
      EXPECT_EQ(info.panes_rendered, 2u);
    }
  });
  std::thread analyst([&spell_session] {
    const fv::spell::SpellSearch spell(spell_session.datasets());
    for (int i = 0; i < 8; ++i) {
      const auto result = spell.search({"HSP26", "TDH3"});
      EXPECT_FALSE(result.dataset_ranking.empty());
    }
  });
  renderer.join();
  analyst.join();
}

TEST(FrameTest, RendersPanesAndRows) {
  auto session = make_session();
  session.select_region(0, 0, 3);
  fv::render::Framebuffer fb(800, 600);
  fv::render::FramebufferCanvas canvas(fb);
  co::FrameConfig config;
  config.width = 800;
  config.height = 600;
  const auto info = co::render_frame(session, canvas, config);
  EXPECT_EQ(info.panes_rendered, 2u);
  EXPECT_GT(info.zoom_rows_rendered, 0u);
  EXPECT_GT(info.cells_rendered, 0u);
  // Something non-background must have been drawn.
  std::size_t lit = 0;
  for (const auto& p : fb.pixels()) {
    if (!(p == fv::render::colors::kBlack)) ++lit;
  }
  EXPECT_GT(lit, 5000u);
}

TEST(AppTest, DesktopAndWallAgreePixelExactly) {
  auto session = make_session();
  session.select_region(0, 0, 3);
  co::ForestViewApp app(&session);
  const fv::wall::WallSpec spec{2, 2, 200, 150};
  co::FrameConfig config;
  config.width = static_cast<long>(spec.total_width());
  config.height = static_cast<long>(spec.total_height());
  const auto desktop = app.render_desktop(config);
  const auto wall = app.render_wall(spec);
  EXPECT_EQ(wall.frame, desktop)
      << "wall rendering must be pixel-identical to the desktop path";
  EXPECT_GT(wall.commands, 0u);
  EXPECT_GT(wall.stats.commands_executed, 0u);
}

}  // namespace
