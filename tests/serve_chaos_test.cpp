// Seeded chaos scenarios for the serving layer (src/serve).
//
// Where serve_test.cpp pins individual endpoint contracts, this suite runs
// the serving layer the way production would hurt it — and asserts the
// properties that make a multi-user analysis server trustworthy:
//
//   * ConcurrentClientsBitIdentical — 8 client threads hammer mixed
//     cluster/topk/spell jobs against ONE shared borrowed-mapped engine
//     artifact; every response must be bit-identical to the single-user
//     serial reference (same bytes, any concurrency).
//   * SaturationUnderConcurrency — more clients than queue slots: every
//     submit either succeeds or is a typed 503, the admitted set all
//     complete, nothing hangs, nothing crashes.
//   * SeededFaultReplay — request-path fault injection replays exactly
//     under a fixed seed regardless of thread interleaving.
//   * AbandonedJobsReapedUnderLoad — jobs abandoned by their client are
//     reaped on the logical request clock while other clients keep working.
//   * CrashMidJobLeavesStoreRepairable — a simulated process death while
//     persisting a result fails that one job, the service keeps serving,
//     and fsck_repair returns the artifact store to clean.
//
// Runs under TSan in CI (the Serve.* / ServeChaos.* leg) — the shared
// mapped compendium plus per-session locks is exactly the aliasing pattern
// a race would hide in.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "expr/synth.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "store/artifact_store.hpp"
#include "store/cached.hpp"
#include "store/fsck.hpp"

namespace {

namespace fs = std::filesystem;
using fv::serve::AnalysisService;
using fv::serve::HttpRequest;
using fv::serve::HttpResponse;
using fv::serve::JsonValue;

HttpRequest make_request(const std::string& method, const std::string& path,
                         const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.path = path;
  request.body = body;
  return request;
}

std::string json_field(const std::string& body, const std::string& key) {
  return fv::serve::parse_json(body).find(key)->as_string();
}

/// The mixed job workload: one body per job kind, parameterized so client
/// c's i-th job is deterministic. Distinct (c, i) pairs map onto a small
/// set of distinct param combinations so the cache sees both hits and
/// misses under concurrency.
std::string job_body(std::size_t client, std::size_t index,
                     const std::string& gene) {
  switch ((client + index) % 4) {
    case 0:
      return "{\"type\":\"cluster\",\"linkage\":\"average\"}";
    case 1:
      return "{\"type\":\"topk\",\"k\":" + std::to_string(3 + index % 3) +
             ",\"rows\":16}";
    case 2:
      return "{\"type\":\"spell\",\"query\":[\"" + gene + "\"],\"limit\":" +
             std::to_string(10 + client % 2 * 10) + "}";
    default:
      return "{\"type\":\"cluster\",\"linkage\":\"single\"}";
  }
}

/// Shared fixture: a synthetic compendium whose engine is persisted to an
/// artifact store once and then opened BORROWED-MAPPED — all sessions and
/// all client threads read one shared read-only mapping, which is the
/// deployment shape (and the aliasing TSan must bless).
class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process dir: ctest runs each test case as its own process, in
    // parallel — a shared fixed path would let one process's
    // SetUpTestSuite remove_all another's live store.
    dir_ = (fs::temp_directory_path() /
            ("fv_serve_chaos." + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    fv::expr::CompendiumSpec spec;
    spec.genome = fv::expr::GenomeSpec::yeast_like(150);
    spec.seed = 11;
    datasets_ = new std::shared_ptr<const std::vector<fv::expr::Dataset>>(
        std::make_shared<std::vector<fv::expr::Dataset>>(
            fv::expr::make_compendium(spec).datasets));
    pool_ = new fv::par::ThreadPool(2);
    store_ = new fv::store::ArtifactStore(dir_ + "/engine_store");

    const fv::expr::ExpressionMatrix& matrix = (**datasets_)[0].values();
    compendium_ = new fv::serve::SharedCompendium(
        fv::serve::open_shared_compendium(
            *store_, fv::store::matrix_key(matrix), [&] { return matrix; },
            *datasets_, fv::sim::Metric::kPearson, *pool_));
    gene_ = (**datasets_)[0].gene(0).systematic_name;
  }

  static void TearDownTestSuite() {
    delete compendium_;
    delete store_;
    delete pool_;
    delete datasets_;
    fs::remove_all(dir_);
  }

  static std::string dir_;
  static std::string gene_;
  static std::shared_ptr<const std::vector<fv::expr::Dataset>>* datasets_;
  static fv::par::ThreadPool* pool_;
  static fv::store::ArtifactStore* store_;
  static fv::serve::SharedCompendium* compendium_;
};

std::string ServeChaosTest::dir_;
std::string ServeChaosTest::gene_;
std::shared_ptr<const std::vector<fv::expr::Dataset>>*
    ServeChaosTest::datasets_ = nullptr;
fv::par::ThreadPool* ServeChaosTest::pool_ = nullptr;
fv::store::ArtifactStore* ServeChaosTest::store_ = nullptr;
fv::serve::SharedCompendium* ServeChaosTest::compendium_ = nullptr;

TEST_F(ServeChaosTest, ConcurrentClientsBitIdenticalToSerialReference) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kJobsPerClient = 4;

  // Serial reference: one client, one session, every distinct job body,
  // in order, on a fresh service over the same mapped compendium.
  std::map<std::string, std::string> reference;
  {
    AnalysisService serial(*compendium_, *pool_);
    const HttpResponse created =
        serial.handle(make_request("POST", "/sessions"));
    const std::string sid = json_field(created.body, "session");
    for (std::size_t c = 0; c < kClients; ++c) {
      for (std::size_t i = 0; i < kJobsPerClient; ++i) {
        const std::string body = job_body(c, i, gene_);
        if (reference.count(body) != 0) continue;
        const HttpResponse submit = serial.handle(
            make_request("POST", "/sessions/" + sid + "/jobs", body));
        ASSERT_TRUE(submit.status == 202 || submit.status == 200)
            << submit.body;
        const std::string job = json_field(submit.body, "job");
        serial.wait_job(job, std::chrono::minutes(2));
        const HttpResponse result = serial.handle(make_request(
            "GET", "/sessions/" + sid + "/jobs/" + job + "/result"));
        ASSERT_EQ(result.status, 200) << result.body;
        reference[body] = result.body;
      }
    }
  }

  // Concurrent run: 8 client threads, each with its own session, all jobs
  // admitted (queue sized to the offered load), every result byte-compared
  // against the serial reference.
  AnalysisService::Options options;
  options.job_workers = 4;
  options.max_active_jobs = kClients * kJobsPerClient;
  AnalysisService service(*compendium_, *pool_, options);

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const HttpResponse created =
          service.handle(make_request("POST", "/sessions"));
      ASSERT_EQ(created.status, 201);
      const std::string sid = json_field(created.body, "session");
      for (std::size_t i = 0; i < kJobsPerClient; ++i) {
        const std::string body = job_body(c, i, gene_);
        const HttpResponse submit = service.handle(
            make_request("POST", "/sessions/" + sid + "/jobs", body));
        ASSERT_TRUE(submit.status == 202 || submit.status == 200)
            << submit.body;
        const std::string job = json_field(submit.body, "job");
        service.wait_job(job, std::chrono::minutes(2));
        const HttpResponse result = service.handle(make_request(
            "GET", "/sessions/" + sid + "/jobs/" + job + "/result"));
        ASSERT_EQ(result.status, 200) << result.body;
        if (result.body != reference.at(body)) {
          mismatches.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << "concurrent responses diverged from the serial reference";
  EXPECT_EQ(completed.load(), kClients * kJobsPerClient);
  EXPECT_EQ(service.session_count(), kClients);
  // The cache collapsed repeat bodies: computes < total jobs, and every
  // job body was computed at most once... per race window; at least the
  // distinct-body floor holds.
  EXPECT_GE(service.stats().computes.load(), reference.size() > 0 ? 1u : 0u);
  EXPECT_GT(service.stats().cache_hits.load(), 0u);
}

TEST_F(ServeChaosTest, SaturationUnderConcurrencyIsGraceful) {
  AnalysisService::Options options;
  options.job_workers = 1;
  options.max_active_jobs = 2;
  AnalysisService service(*compendium_, *pool_, options);

  constexpr std::size_t kClients = 8;
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> unexpected{0};
  std::vector<std::string> jobs[kClients];
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const HttpResponse created =
          service.handle(make_request("POST", "/sessions"));
      const std::string sid = json_field(created.body, "session");
      for (std::size_t i = 0; i < 3; ++i) {
        const HttpResponse submit = service.handle(make_request(
            "POST", "/sessions/" + sid + "/jobs", job_body(c, i, gene_)));
        if (submit.status == 202 || submit.status == 200) {
          accepted.fetch_add(1);
          jobs[c].push_back(json_field(submit.body, "job"));
        } else if (submit.status == 503) {
          rejected.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Saturation refused some submits with the typed 503 and admitted the
  // rest; there is no third outcome, and everything admitted completes.
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GT(rejected.load(), 0u);
  EXPECT_GT(accepted.load(), 0u);
  EXPECT_EQ(service.stats().jobs_rejected.load(), rejected.load());
  for (const auto& client_jobs : jobs) {
    for (const std::string& job : client_jobs) {
      EXPECT_NO_THROW(service.wait_job(job, std::chrono::minutes(2)));
    }
  }
}

TEST_F(ServeChaosTest, SeededFaultReplayIsInterleavingIndependent) {
  AnalysisService::Options options;
  options.faults.seed = 0xC0FFEE;
  options.faults.reject_rate = 0.25;

  // Pass 1: serial — record which request ticks were injected-rejected.
  std::vector<int> serial_statuses;
  {
    AnalysisService service(*compendium_, *pool_, options);
    for (int i = 0; i < 64; ++i) {
      serial_statuses.push_back(
          service.handle(make_request("GET", "/healthz")).status);
    }
  }

  // Pass 2: the same 64 requests issued by 4 racing threads. Which CLIENT
  // eats each rejection varies with interleaving, but the rejected tick
  // SET is fixed by (seed, tick) — so the total count must match exactly.
  const std::size_t serial_rejects = static_cast<std::size_t>(
      std::count(serial_statuses.begin(), serial_statuses.end(), 503));
  {
    AnalysisService service(*compendium_, *pool_, options);
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&service] {
        for (int i = 0; i < 16; ++i) {
          service.handle(make_request("GET", "/healthz"));
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(service.stats().injected_rejects.load(), serial_rejects);
  }
  EXPECT_GT(serial_rejects, 0u);
}

TEST_F(ServeChaosTest, AbandonedJobsReapedWhileOthersWork) {
  AnalysisService::Options options;
  options.job_ttl_requests = 8;
  AnalysisService service(*compendium_, *pool_, options);

  const HttpResponse created = service.handle(make_request("POST", "/sessions"));
  const std::string sid = json_field(created.body, "session");
  const HttpResponse submit = service.handle(make_request(
      "POST", "/sessions/" + sid + "/jobs", "{\"type\":\"topk\",\"k\":2}"));
  const std::string abandoned = json_field(submit.body, "job");
  service.wait_job(abandoned, std::chrono::minutes(2));

  // Another client keeps the server busy past the TTL without ever
  // touching the abandoned job.
  std::thread other([&service] {
    const HttpResponse other_created =
        service.handle(make_request("POST", "/sessions"));
    const std::string other_sid = json_field(other_created.body, "session");
    for (int i = 0; i < 12; ++i) {
      service.handle(make_request("GET", "/sessions/" + other_sid));
    }
  });
  other.join();

  EXPECT_GE(service.reap_abandoned(), 1u);
  EXPECT_EQ(service
                .handle(make_request(
                    "GET", "/sessions/" + sid + "/jobs/" + abandoned))
                .status,
            404);
  EXPECT_GE(service.stats().jobs_reaped.load(), 1u);
  // The session survives its reaped job.
  EXPECT_EQ(service.handle(make_request("GET", "/sessions/" + sid)).status,
            200);
}

TEST_F(ServeChaosTest, CrashMidJobLeavesStoreRepairable) {
  const std::string crash_dir = dir_ + "/crash_store";
  fs::remove_all(crash_dir);

  {
    // crash_at_op targets the result-persist commit: ops 1..N of this
    // store are the blob put (the engine store is a different store).
    fv::store::FaultSpec faults;
    faults.crash_at_op = 3;
    fv::store::ArtifactStore store(crash_dir, faults);
    AnalysisService::Options options;
    options.store = &store;
    AnalysisService service(*compendium_, *pool_, options);

    const HttpResponse created =
        service.handle(make_request("POST", "/sessions"));
    const std::string sid = json_field(created.body, "session");
    const HttpResponse submit = service.handle(make_request(
        "POST", "/sessions/" + sid + "/jobs", "{\"type\":\"topk\",\"k\":3}"));
    const std::string job = json_field(submit.body, "job");
    service.wait_job(job, std::chrono::minutes(2));

    // The job failed (its persist "process" died) but the service answers.
    const HttpResponse status = service.handle(
        make_request("GET", "/sessions/" + sid + "/jobs/" + job));
    EXPECT_EQ(status.status, 200);
    EXPECT_EQ(json_field(status.body, "state"), "failed");
    const HttpResponse result = service.handle(make_request(
        "GET", "/sessions/" + sid + "/jobs/" + job + "/result"));
    EXPECT_EQ(result.status, 500);
    EXPECT_NE(result.body.find("store crashed"), std::string::npos);
    EXPECT_EQ(service.stats().jobs_failed.load(), 1u);

    // And the server as a whole is still alive — crash_at_op fires on one
    // exact op index, so later requests pass the injector untouched.
    const HttpResponse healthz = service.handle(make_request("GET", "/healthz"));
    EXPECT_EQ(healthz.status, 200);
  }

  // The "dead process" left the store mid-commit; fsck repairs to clean.
  const fv::store::FsckReport before = fv::store::fsck_scan(crash_dir);
  const fv::store::FsckReport repaired = fv::store::fsck_repair(crash_dir);
  EXPECT_TRUE(fv::store::fsck_scan(crash_dir).clean())
      << "orphans before repair: " << before.orphan_tmp
      << ", repaired: " << repaired.repaired;

  // A restarted server over the repaired store serves the same request by
  // computing it fresh — bit-identical to a storeless serve.
  {
    fv::store::ArtifactStore store(crash_dir);
    AnalysisService::Options options;
    options.store = &store;
    AnalysisService service(*compendium_, *pool_, options);
    AnalysisService reference(*compendium_, *pool_);
    const auto run = [&](AnalysisService& target) {
      const HttpResponse created =
          target.handle(make_request("POST", "/sessions"));
      const std::string sid = json_field(created.body, "session");
      const HttpResponse submit = target.handle(make_request(
          "POST", "/sessions/" + sid + "/jobs", "{\"type\":\"topk\",\"k\":3}"));
      const std::string job = json_field(submit.body, "job");
      target.wait_job(job, std::chrono::minutes(2));
      return target
          .handle(make_request("GET",
                               "/sessions/" + sid + "/jobs/" + job + "/result"))
          .body;
    };
    EXPECT_EQ(run(service), run(reference));
  }
  fs::remove_all(crash_dir);
}

}  // namespace
