// Tests for geometry, viewport scrolling/zooming and pane layout.
#include <gtest/gtest.h>

#include "layout/geometry.hpp"
#include "layout/pane.hpp"
#include "layout/viewport.hpp"
#include "util/error.hpp"

namespace {

namespace ly = fv::layout;
using ly::Rect;

TEST(RectTest, BasicPredicates) {
  const Rect r{2, 3, 4, 5};
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.right(), 6);
  EXPECT_EQ(r.bottom(), 8);
  EXPECT_TRUE(r.contains(2, 3));
  EXPECT_TRUE(r.contains(5, 7));
  EXPECT_FALSE(r.contains(6, 3));
  EXPECT_TRUE((Rect{0, 0, 0, 5}).empty());
}

TEST(RectTest, IntersectionCases) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 10, 10};
  const Rect i = ly::intersect(a, b);
  EXPECT_EQ(i, (Rect{5, 5, 5, 5}));
  EXPECT_TRUE(ly::intersect(a, Rect{20, 20, 5, 5}).empty());
  EXPECT_TRUE(ly::overlaps(a, b));
  EXPECT_FALSE(ly::overlaps(a, Rect{10, 0, 5, 5}));  // edge-adjacent
}

TEST(RectTest, InsetShrinks) {
  const Rect r{0, 0, 10, 10};
  EXPECT_EQ(ly::inset(r, 2), (Rect{2, 2, 6, 6}));
  EXPECT_TRUE(ly::inset(r, 6).empty());
}

TEST(ViewportTest, VisibleCountRoundsUp) {
  ly::Viewport vp(100, 8);
  EXPECT_EQ(vp.visible_count(), 13u);  // ceil(100/8)
  vp.set_zoom(10);
  EXPECT_EQ(vp.visible_count(), 10u);
}

TEST(ViewportTest, ScrollClampsToEnd) {
  ly::Viewport vp(80, 8);  // 10 rows fit
  vp.scroll_to(95, 100);
  EXPECT_EQ(vp.scroll_offset(), 90u);
  vp.scroll_to(0, 100);
  EXPECT_EQ(vp.scroll_offset(), 0u);
  vp.scroll_to(50, 5);  // fewer items than fit
  EXPECT_EQ(vp.scroll_offset(), 0u);
}

TEST(ViewportTest, ItemPixelMappingInverts) {
  ly::Viewport vp(80, 8);
  vp.scroll_to(20, 1000);
  EXPECT_EQ(vp.item_y(20), 0);
  EXPECT_EQ(vp.item_y(23), 24);
  EXPECT_EQ(vp.item_at(24), 23u);
  EXPECT_EQ(vp.item_at(0), 20u);
  EXPECT_LT(vp.item_y(10), 0);  // above the fold
}

TEST(ViewportTest, InvalidParamsThrow) {
  EXPECT_THROW(ly::Viewport(-5, 8), fv::InvalidArgument);
  EXPECT_THROW(ly::Viewport(10, 0), fv::InvalidArgument);
  ly::Viewport vp(10, 2);
  EXPECT_THROW(vp.set_zoom(0), fv::InvalidArgument);
}

TEST(PaneLayoutTest, PartsAreDisjointAndInsidePane) {
  const Rect pane{10, 20, 400, 600};
  const auto parts = ly::layout_pane(pane, ly::PaneConfig{});
  const Rect* rects[] = {&parts.header,     &parts.global_view,
                         &parts.gene_tree,  &parts.array_tree,
                         &parts.zoom_view,  &parts.annotations};
  for (const Rect* r : rects) {
    ASSERT_FALSE(r->empty());
    EXPECT_GE(r->x, pane.x);
    EXPECT_GE(r->y, pane.y);
    EXPECT_LE(r->right(), pane.right());
    EXPECT_LE(r->bottom(), pane.bottom());
  }
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_FALSE(ly::overlaps(*rects[i], *rects[j]))
          << "parts " << i << " and " << j << " overlap";
    }
  }
}

TEST(PaneLayoutTest, GeneTreeAlignsWithZoomView) {
  const auto parts = ly::layout_pane(Rect{0, 0, 500, 400}, ly::PaneConfig{});
  EXPECT_EQ(parts.gene_tree.y, parts.zoom_view.y);
  EXPECT_EQ(parts.gene_tree.height, parts.zoom_view.height);
  EXPECT_EQ(parts.annotations.y, parts.zoom_view.y);
}

TEST(PaneLayoutTest, TinyPaneDegradesGracefully) {
  const auto parts = ly::layout_pane(Rect{0, 0, 30, 20}, ly::PaneConfig{});
  // Whatever fits may be non-empty, but nothing may stick out, and the call
  // must not throw.
  EXPECT_TRUE(parts.zoom_view.empty() ||
              parts.zoom_view.right() <= 30);
  const auto none = ly::layout_pane(Rect{}, ly::PaneConfig{});
  EXPECT_TRUE(none.zoom_view.empty());
}

TEST(SplitPanesTest, EqualWidthsCoverCanvas) {
  const auto panes = ly::split_vertical_panes(1000, 500, 4, 10);
  ASSERT_EQ(panes.size(), 4u);
  long total = 0;
  for (const Rect& pane : panes) {
    EXPECT_EQ(pane.height, 500);
    total += pane.width;
  }
  EXPECT_EQ(total, 1000 - 3 * 10);
  // Panes are ordered and non-overlapping.
  for (std::size_t i = 1; i < panes.size(); ++i) {
    EXPECT_EQ(panes[i].x, panes[i - 1].right() + 10);
  }
}

TEST(SplitPanesTest, RemainderSpreadsOverLeadingPanes) {
  const auto panes = ly::split_vertical_panes(103, 50, 4, 1);
  // usable = 100 -> widths 25 each; with remainder 0.
  EXPECT_EQ(panes[0].width + panes[1].width + panes[2].width +
                panes[3].width,
            100);
  const auto uneven = ly::split_vertical_panes(102, 50, 4, 0);
  EXPECT_EQ(uneven[0].width, 26);  // 102 = 25*4 + 2 -> first two get +1
  EXPECT_EQ(uneven[1].width, 26);
  EXPECT_EQ(uneven[2].width, 25);
}

TEST(SplitPanesTest, InvalidArgsThrow) {
  EXPECT_THROW(ly::split_vertical_panes(100, 100, 0, 0),
               fv::InvalidArgument);
  EXPECT_THROW(ly::split_vertical_panes(10, 100, 20, 0),
               fv::InvalidArgument);
  EXPECT_THROW(ly::split_vertical_panes(100, 100, 2, -1),
               fv::InvalidArgument);
}

// Property sweep: pane splitting always tiles the canvas exactly for many
// (width, count, gap) combinations.
class SplitPanesPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SplitPanesPropertyTest, TilesExactly) {
  const auto [width, count, gap] = GetParam();
  const long total_gap = static_cast<long>(gap) * (count - 1);
  if (width - total_gap < count) GTEST_SKIP() << "infeasible combination";
  const auto panes = ly::split_vertical_panes(width, 100,
                                              static_cast<std::size_t>(count),
                                              gap);
  ASSERT_EQ(panes.size(), static_cast<std::size_t>(count));
  long cursor = 0;
  for (const Rect& pane : panes) {
    EXPECT_EQ(pane.x, cursor);
    EXPECT_GE(pane.width, 1);
    cursor = pane.right() + gap;
  }
  EXPECT_EQ(cursor - gap, width);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, SplitPanesPropertyTest,
    ::testing::Combine(::testing::Values(50, 100, 1023, 1920),
                       ::testing::Values(1, 2, 3, 7, 16),
                       ::testing::Values(0, 1, 5)));

}  // namespace
