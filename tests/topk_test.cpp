// Tests for the streaming tile consumers of the similarity engine: the
// for_each_tile visitor contract (exactly-once pair delivery, values equal
// to the pairwise API, serial == pooled), top_k_neighbors equivalence
// against sort-the-full-row (including distance ties and masked/missing
// rows), the min_common filter, the streamed mean-pairwise reduction, and
// the float-accumulator dense kernel's error bound against the double
// reference across row lengths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "cluster/distance.hpp"
#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/similarity_engine.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/triangular.hpp"

namespace {

namespace ex = fv::expr;
namespace sm = fv::sim;
namespace st = fv::stats;

ex::ExpressionMatrix random_matrix(std::size_t rows, std::size_t cols,
                                   double missing_rate, std::uint64_t seed) {
  fv::Rng rng(seed);
  ex::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double sign = r % 2 == 0 ? 1.0 : -1.0;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform() < missing_rate) continue;  // stays missing (NaN)
      const double pattern = std::sin(0.31 * static_cast<double>(c + 1));
      m.set(r, c,
            static_cast<float>(sign * pattern + rng.normal(0.0, 0.4)));
    }
  }
  return m;
}

/// Reference top-k: sort every full row of pairwise distances by
/// (distance, index) and keep the head — exactly the total order the
/// engine's bounded heaps use.
struct ReferenceRow {
  std::vector<std::uint32_t> indices;
  std::vector<float> distances;
};

std::vector<ReferenceRow> reference_top_k(const sm::SimilarityEngine& engine,
                                          std::size_t k,
                                          std::size_t min_common) {
  const std::size_t n = engine.size();
  std::vector<ReferenceRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::pair<float, std::uint32_t>> candidates;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (min_common > 0) {
        std::size_t common = 0;
        for (std::size_t c = 0; c < engine.length(); ++c) {
          if (engine.value_present(i, c) && engine.value_present(j, c)) {
            ++common;
          }
        }
        if (common < min_common) continue;
      }
      const std::size_t a = std::min(i, j);
      const std::size_t b = std::max(i, j);
      candidates.emplace_back(engine.distance(a, b),
                              static_cast<std::uint32_t>(j));
    }
    std::sort(candidates.begin(), candidates.end());
    const std::size_t keep = std::min(k, candidates.size());
    for (std::size_t s = 0; s < keep; ++s) {
      rows[i].distances.push_back(candidates[s].first);
      rows[i].indices.push_back(candidates[s].second);
    }
  }
  return rows;
}

void expect_table_matches_reference(const sm::SimilarityEngine& engine,
                                    std::size_t k, std::size_t min_common,
                                    fv::par::ThreadPool& pool) {
  const auto table = engine.top_k_neighbors(k, pool, min_common);
  const auto reference = reference_top_k(engine, table.k, min_common);
  ASSERT_EQ(table.count, engine.size());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const auto got_idx = table.neighbors(i);
    const auto got_d = table.neighbor_distances(i);
    ASSERT_EQ(got_idx.size(), reference[i].indices.size()) << "row " << i;
    for (std::size_t s = 0; s < got_idx.size(); ++s) {
      EXPECT_EQ(got_idx[s], reference[i].indices[s])
          << "row " << i << " slot " << s;
      EXPECT_EQ(got_d[s], reference[i].distances[s])
          << "row " << i << " slot " << s;
    }
  }
}

TEST(TopKNeighborsTest, MatchesFullRowSortAcrossTileBoundaries) {
  // 70 and 130 rows cross the 64-row tile edge; include missing cells so
  // masked rows exercise the slow kernels inside the tile stream.
  fv::par::ThreadPool pool(3);
  for (const std::size_t rows : {10u, 70u, 130u}) {
    const auto m = random_matrix(rows, 9, 0.1, 500 + rows);
    for (const auto metric : {sm::Metric::kPearson, sm::Metric::kEuclidean}) {
      const auto engine = sm::SimilarityEngine::from_rows(m, metric);
      for (const std::size_t k : {1u, 5u, 17u}) {
        expect_table_matches_reference(engine, k, 0, pool);
      }
    }
  }
}

TEST(TopKNeighborsTest, TiedDistancesResolveByIndexDeterministically) {
  // Blocks of identical rows make whole distance groups tie at 0 (Pearson
  // distance between identical profiles) and at the cross-block value; the
  // (distance, index) total order must pick the lowest indices, on every
  // run, under a multi-threaded pool.
  ex::ExpressionMatrix m(96, 8);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double base = r % 2 == 0 ? std::sin(0.7 * (c + 1.0))
                                     : std::cos(0.9 * (c + 1.0));
      m.set(r, c, static_cast<float>(base));
    }
  }
  fv::par::ThreadPool pool(4);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  const auto first = engine.top_k_neighbors(5, pool);
  expect_table_matches_reference(engine, 5, 0, pool);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto again = engine.top_k_neighbors(5, pool);
    EXPECT_EQ(again.indices, first.indices);
    EXPECT_EQ(again.distances, first.distances);
  }
}

TEST(TopKNeighborsTest, MinCommonFiltersSparseOverlaps) {
  // Rows 0/1 overlap on one column only; rows 2..5 are dense. With
  // min_common = 2 the sparse pair must vanish from both rows' tables.
  const float na = st::missing_value();
  ex::ExpressionMatrix m(6, 4);
  const std::vector<std::vector<float>> rows{
      {1.0f, 2.0f, na, na},
      {na, 2.5f, 3.0f, na},
      {0.5f, 1.5f, 2.5f, 3.5f},
      {3.0f, 1.0f, 2.0f, 0.5f},
      {1.0f, 1.0f, 2.0f, 3.0f},
      {2.0f, 0.5f, 1.5f, 2.5f}};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      if (!st::is_missing(rows[r][c])) m.set(r, c, rows[r][c]);
    }
  }
  fv::par::ThreadPool pool(2);
  const auto engine =
      sm::SimilarityEngine::from_rows(m, sm::Metric::kEuclidean);
  expect_table_matches_reference(engine, 5, 2, pool);
  const auto table = engine.top_k_neighbors(5, pool, 2);
  for (const auto j : table.neighbors(0)) EXPECT_NE(j, 1u);
  for (const auto j : table.neighbors(1)) EXPECT_NE(j, 0u);
  // Dense rows keep all 5 possible neighbors minus the filtered ones only.
  EXPECT_EQ(table.neighbor_count(2), 5u);
}

TEST(TopKNeighborsTest, DegenerateSizesAndLargeK) {
  fv::par::ThreadPool pool(2);
  const auto empty = sm::SimilarityEngine::from_profiles(
      {}, 0, 5, sm::Metric::kPearson);
  const auto none = empty.top_k_neighbors(3, pool);
  EXPECT_EQ(none.count, 0u);
  EXPECT_EQ(none.k, 0u);

  const std::vector<float> one{1.0f, 2.0f, 3.0f};
  const auto single =
      sm::SimilarityEngine::from_profiles(one, 1, 3, sm::Metric::kPearson);
  const auto lone = single.top_k_neighbors(4, pool);
  EXPECT_EQ(lone.count, 1u);
  EXPECT_EQ(lone.k, 0u);
  EXPECT_EQ(lone.neighbor_count(0), 0u);

  // k past n - 1 clamps; every row still gets all n - 1 neighbors.
  const auto m = random_matrix(7, 6, 0.0, 901);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  const auto table = engine.top_k_neighbors(50, pool);
  EXPECT_EQ(table.k, 6u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(table.neighbor_count(i), 6u);
  expect_table_matches_reference(engine, 50, 0, pool);

  const auto bank = sm::SimilarityEngine::from_rows(
      m, sm::Metric::kPearson, sm::Precompute::kDotBank);
  EXPECT_THROW(bank.top_k_neighbors(3, pool), fv::InvalidArgument);
}

TEST(ForEachTileTest, DeliversEveryPairOnceWithPairwiseValues) {
  for (const std::size_t rows : {5u, 70u, 130u}) {
    const auto m = random_matrix(rows, 9, 0.15, 700 + rows);
    const auto engine =
        sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
    fv::par::ThreadPool pool(3);
    std::vector<int> visits(rows * rows, 0);
    std::vector<float> values(rows * rows, 0.0f);
    std::mutex mutex;
    std::size_t tiles_seen = 0;
    engine.for_each_tile(
        [&](const sm::DistanceTile& tile) {
          const std::lock_guard<std::mutex> lock(mutex);
          ++tiles_seen;
          EXPECT_LT(tile.index, engine.tile_count());
          for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
            for (std::size_t j = std::max(tile.col_begin, i + 1);
                 j < tile.col_end; ++j) {
              ++visits[i * rows + j];
              values[i * rows + j] = tile.at(i, j);
            }
          }
        },
        pool);
    EXPECT_EQ(tiles_seen, engine.tile_count());
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = i + 1; j < rows; ++j) {
        EXPECT_EQ(visits[i * rows + j], 1) << i << "," << j;
        EXPECT_EQ(values[i * rows + j], engine.distance(i, j));
      }
    }
  }
}

TEST(ForEachTileTest, SerialVariantMatchesPooled) {
  const auto m = random_matrix(70, 9, 0.1, 801);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool pool(3);
  std::vector<float> pooled(fv::condensed_size(70), -1.0f);
  std::vector<float> serial(fv::condensed_size(70), -1.0f);
  engine.condensed_distances(pooled, pool);
  engine.for_each_tile([&](const sm::DistanceTile& tile) {
    for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
      for (std::size_t j = std::max(tile.col_begin, i + 1); j < tile.col_end;
           ++j) {
        serial[fv::condensed_index(i, j, 70)] = tile.at(i, j);
      }
    }
  });
  EXPECT_EQ(serial, pooled);
}

TEST(ForEachTileTest, MeanPairwiseDistanceMatchesBruteForce) {
  const auto m = random_matrix(70, 9, 0.1, 811);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  double total = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.rows(); ++j) {
      total += engine.distance(i, j);
    }
  }
  const double expected =
      total / static_cast<double>(fv::condensed_size(m.rows()));
  fv::par::ThreadPool pool(3);
  EXPECT_NEAR(engine.mean_pairwise_distance(pool), expected, 1e-9);
  EXPECT_NEAR(engine.mean_pairwise_distance(), expected, 1e-9);
  EXPECT_EQ(engine.mean_pairwise_distance(pool),
            engine.mean_pairwise_distance(pool));  // deterministic
}

// --- Float-accumulator dense kernel --------------------------------------

/// Flat dense random profiles (no missing cells — the float kernel serves
/// the dense fast path only).
std::vector<float> dense_profiles(std::size_t count, std::size_t length,
                                  std::uint64_t seed) {
  fv::Rng rng(seed);
  std::vector<float> flat(count * length);
  for (float& v : flat) {
    v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return flat;
}

TEST(FloatKernelTest, AutoEngagesShortRowsAndFallsBackPastBound) {
  const auto probe = [](std::size_t length, sm::DenseKernel kernel) {
    const auto flat = dense_profiles(2, length, 1000 + length);
    return sm::SimilarityEngine::from_profiles(flat, 2, length,
                                               sm::Metric::kPearson,
                                               sm::Precompute::kAllPairs,
                                               kernel)
        .float_kernel_active();
  };
  // Auto: proven lengths (stride <= 256) use float, longer rows fall back.
  EXPECT_TRUE(probe(96, sm::DenseKernel::kAuto));
  EXPECT_TRUE(probe(256, sm::DenseKernel::kAuto));
  EXPECT_FALSE(probe(257, sm::DenseKernel::kAuto));
  EXPECT_FALSE(probe(10000, sm::DenseKernel::kAuto));
  // Forced kernels ignore the bound.
  EXPECT_FALSE(probe(96, sm::DenseKernel::kDouble));
  EXPECT_TRUE(probe(10000, sm::DenseKernel::kFloat));
  // Euclidean rows are unnormalized — the bound does not apply, so the
  // float kernel never engages there.
  const auto flat = dense_profiles(2, 96, 77);
  EXPECT_FALSE(sm::SimilarityEngine::from_profiles(flat, 2, 96,
                                                   sm::Metric::kEuclidean)
                   .float_kernel_active());
}

TEST(FloatKernelTest, ErrorBoundAcrossRowLengths) {
  // The study behind kFloatKernelMaxStride: forced-float vs the double
  // reference on dense random profiles across row lengths 96 -> 10k. The
  // worst-case bound is (stride / 16) * 2^-24; measured error must sit
  // inside the 1e-6 contract wherever kAuto engages, and inside the
  // worst-case bound everywhere.
  constexpr std::size_t kProfiles = 24;
  for (const std::size_t length :
       {96u, 160u, 256u, 512u, 1024u, 4096u, 10000u}) {
    const auto flat = dense_profiles(kProfiles, length, 2000 + length);
    const auto engine_f = sm::SimilarityEngine::from_profiles(
        flat, kProfiles, length, sm::Metric::kPearson,
        sm::Precompute::kAllPairs, sm::DenseKernel::kFloat);
    const auto engine_d = sm::SimilarityEngine::from_profiles(
        flat, kProfiles, length, sm::Metric::kPearson,
        sm::Precompute::kAllPairs, sm::DenseKernel::kDouble);
    ASSERT_TRUE(engine_f.float_kernel_active());
    ASSERT_FALSE(engine_d.float_kernel_active());
    double max_error = 0.0;
    for (std::size_t i = 0; i < kProfiles; ++i) {
      for (std::size_t j = i + 1; j < kProfiles; ++j) {
        max_error = std::max(max_error,
                             std::abs(engine_f.similarity(i, j) -
                                      engine_d.similarity(i, j)));
      }
    }
    const std::size_t stride = engine_f.stride();
    const double worst_case =
        static_cast<double>(stride / 16) * std::ldexp(1.0, -24);
    EXPECT_LE(max_error, worst_case)
        << "length " << length << " measured " << max_error;
    if (stride <= 256) {
      EXPECT_LT(max_error, 1e-6)
          << "length " << length << " breaks the contract";
    }
  }
}

TEST(FloatKernelTest, ForcedFloatStaysInsideScalarContractOnRealShapes) {
  // End-to-end: a typical compendium shape (96 conditions) under kAuto must
  // still match the scalar reference within the 1e-6 contract — the same
  // check sim_test runs, but explicitly pinned to the float kernel.
  const auto m = random_matrix(40, 96, 0.0, 3001);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  ASSERT_TRUE(engine.float_kernel_active());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.rows(); ++j) {
      const double reference =
          fv::cluster::profile_distance(m.row(i), m.row(j),
                                        sm::Metric::kPearson);
      EXPECT_NEAR(engine.distance(i, j), reference, 1e-6);
    }
  }
}

}  // namespace
