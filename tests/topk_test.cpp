// Tests for the streaming tile consumers of the similarity engine: the
// for_each_tile visitor contract (exactly-once pair delivery, values equal
// to the pairwise API, serial == pooled), top_k_neighbors equivalence
// against sort-the-full-row (including distance ties and masked/missing
// rows), the min_common filter, the norm-bound pruned top-k strategy
// (bit-identical to exact on module-structured, all-tied, heavily-masked
// and k >= n-1 inputs; prune statistics accounting; Euclidean rejection),
// the streamed mean-pairwise reduction, and the float-accumulator dense
// kernel's block-flush error bound against the double reference across row
// lengths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "cluster/distance.hpp"
#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/similarity_engine.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/triangular.hpp"

namespace {

namespace ex = fv::expr;
namespace sm = fv::sim;
namespace st = fv::stats;

ex::ExpressionMatrix random_matrix(std::size_t rows, std::size_t cols,
                                   double missing_rate, std::uint64_t seed) {
  fv::Rng rng(seed);
  ex::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double sign = r % 2 == 0 ? 1.0 : -1.0;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform() < missing_rate) continue;  // stays missing (NaN)
      const double pattern = std::sin(0.31 * static_cast<double>(c + 1));
      m.set(r, c,
            static_cast<float>(sign * pattern + rng.normal(0.0, 0.4)));
    }
  }
  return m;
}

/// Reference top-k: sort every full row of pairwise distances by
/// (distance, index) and keep the head — exactly the total order the
/// engine's bounded heaps use.
struct ReferenceRow {
  std::vector<std::uint32_t> indices;
  std::vector<float> distances;
};

std::vector<ReferenceRow> reference_top_k(const sm::SimilarityEngine& engine,
                                          std::size_t k,
                                          std::size_t min_common) {
  const std::size_t n = engine.size();
  std::vector<ReferenceRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::pair<float, std::uint32_t>> candidates;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (min_common > 0) {
        std::size_t common = 0;
        for (std::size_t c = 0; c < engine.length(); ++c) {
          if (engine.value_present(i, c) && engine.value_present(j, c)) {
            ++common;
          }
        }
        if (common < min_common) continue;
      }
      const std::size_t a = std::min(i, j);
      const std::size_t b = std::max(i, j);
      candidates.emplace_back(engine.distance(a, b),
                              static_cast<std::uint32_t>(j));
    }
    std::sort(candidates.begin(), candidates.end());
    const std::size_t keep = std::min(k, candidates.size());
    for (std::size_t s = 0; s < keep; ++s) {
      rows[i].distances.push_back(candidates[s].first);
      rows[i].indices.push_back(candidates[s].second);
    }
  }
  return rows;
}

void expect_table_matches_reference(const sm::SimilarityEngine& engine,
                                    std::size_t k, std::size_t min_common,
                                    fv::par::ThreadPool& pool) {
  const auto table = engine.top_k_neighbors(k, pool, min_common);
  // kAuto routes correlation engines through the pruned strategy; every
  // reference check therefore also pins pruned == exact, bit for bit.
  const auto exact = engine.top_k_neighbors(k, pool, min_common,
                                            sm::TopKStrategy::kExact);
  ASSERT_EQ(table.indices, exact.indices);
  ASSERT_EQ(table.distances, exact.distances);
  ASSERT_EQ(table.valid, exact.valid);
  const auto reference = reference_top_k(engine, table.k, min_common);
  ASSERT_EQ(table.count, engine.size());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const auto got_idx = table.neighbors(i);
    const auto got_d = table.neighbor_distances(i);
    ASSERT_EQ(got_idx.size(), reference[i].indices.size()) << "row " << i;
    for (std::size_t s = 0; s < got_idx.size(); ++s) {
      EXPECT_EQ(got_idx[s], reference[i].indices[s])
          << "row " << i << " slot " << s;
      EXPECT_EQ(got_d[s], reference[i].distances[s])
          << "row " << i << " slot " << s;
    }
  }
}

TEST(TopKNeighborsTest, MatchesFullRowSortAcrossTileBoundaries) {
  // 70 and 130 rows cross the 64-row tile edge; include missing cells so
  // masked rows exercise the slow kernels inside the tile stream.
  fv::par::ThreadPool pool(3);
  for (const std::size_t rows : {10u, 70u, 130u}) {
    const auto m = random_matrix(rows, 9, 0.1, 500 + rows);
    for (const auto metric : {sm::Metric::kPearson, sm::Metric::kEuclidean}) {
      const auto engine = sm::SimilarityEngine::from_rows(m, metric);
      for (const std::size_t k : {1u, 5u, 17u}) {
        expect_table_matches_reference(engine, k, 0, pool);
      }
    }
  }
}

TEST(TopKNeighborsTest, TiedDistancesResolveByIndexDeterministically) {
  // Blocks of identical rows make whole distance groups tie at 0 (Pearson
  // distance between identical profiles) and at the cross-block value; the
  // (distance, index) total order must pick the lowest indices, on every
  // run, under a multi-threaded pool.
  ex::ExpressionMatrix m(96, 8);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double base = r % 2 == 0 ? std::sin(0.7 * (c + 1.0))
                                     : std::cos(0.9 * (c + 1.0));
      m.set(r, c, static_cast<float>(base));
    }
  }
  fv::par::ThreadPool pool(4);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  const auto first = engine.top_k_neighbors(5, pool);
  expect_table_matches_reference(engine, 5, 0, pool);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto again = engine.top_k_neighbors(5, pool);
    EXPECT_EQ(again.indices, first.indices);
    EXPECT_EQ(again.distances, first.distances);
  }
}

TEST(TopKNeighborsTest, MinCommonFiltersSparseOverlaps) {
  // Rows 0/1 overlap on one column only; rows 2..5 are dense. With
  // min_common = 2 the sparse pair must vanish from both rows' tables.
  const float na = st::missing_value();
  ex::ExpressionMatrix m(6, 4);
  const std::vector<std::vector<float>> rows{
      {1.0f, 2.0f, na, na},
      {na, 2.5f, 3.0f, na},
      {0.5f, 1.5f, 2.5f, 3.5f},
      {3.0f, 1.0f, 2.0f, 0.5f},
      {1.0f, 1.0f, 2.0f, 3.0f},
      {2.0f, 0.5f, 1.5f, 2.5f}};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      if (!st::is_missing(rows[r][c])) m.set(r, c, rows[r][c]);
    }
  }
  fv::par::ThreadPool pool(2);
  const auto engine =
      sm::SimilarityEngine::from_rows(m, sm::Metric::kEuclidean);
  expect_table_matches_reference(engine, 5, 2, pool);
  const auto table = engine.top_k_neighbors(5, pool, 2);
  for (const auto j : table.neighbors(0)) EXPECT_NE(j, 1u);
  for (const auto j : table.neighbors(1)) EXPECT_NE(j, 0u);
  // Dense rows keep all 5 possible neighbors minus the filtered ones only.
  EXPECT_EQ(table.neighbor_count(2), 5u);
}

TEST(TopKNeighborsTest, DegenerateSizesAndLargeK) {
  fv::par::ThreadPool pool(2);
  const auto empty = sm::SimilarityEngine::from_profiles(
      {}, 0, 5, sm::Metric::kPearson);
  const auto none = empty.top_k_neighbors(3, pool);
  EXPECT_EQ(none.count, 0u);
  EXPECT_EQ(none.k, 0u);

  const std::vector<float> one{1.0f, 2.0f, 3.0f};
  const auto single =
      sm::SimilarityEngine::from_profiles(one, 1, 3, sm::Metric::kPearson);
  const auto lone = single.top_k_neighbors(4, pool);
  EXPECT_EQ(lone.count, 1u);
  EXPECT_EQ(lone.k, 0u);
  EXPECT_EQ(lone.neighbor_count(0), 0u);

  // k past n - 1 clamps; every row still gets all n - 1 neighbors.
  const auto m = random_matrix(7, 6, 0.0, 901);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  const auto table = engine.top_k_neighbors(50, pool);
  EXPECT_EQ(table.k, 6u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(table.neighbor_count(i), 6u);
  expect_table_matches_reference(engine, 50, 0, pool);

  const auto bank = sm::SimilarityEngine::from_rows(
      m, sm::Metric::kPearson, sm::Precompute::kDotBank);
  EXPECT_THROW(bank.top_k_neighbors(3, pool), fv::InvalidArgument);
}

// --- Norm-bound tile pruning ----------------------------------------------

/// Dataset-block module data: contiguous gene modules, each strongly
/// varying inside its own pair of 16-condition dataset blocks and flat
/// (noise) elsewhere — condition-specific co-regulation, the compendium
/// shape whose normalized rows concentrate norm energy in different
/// segments, giving the pruned strategy's Cauchy–Schwarz bound something
/// to prove on cross-module tiles.
ex::ExpressionMatrix block_module_matrix(std::size_t rows, std::size_t cols,
                                         std::size_t module_rows,
                                         std::uint64_t seed) {
  fv::Rng rng(seed);
  const std::size_t datasets = cols / 16;
  ex::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t module = r / module_rows;
    const std::size_t d0 = module % datasets;
    const std::size_t d1 = (module + 1 + module / datasets) % datasets;
    const double freq = 0.35 + 0.07 * static_cast<double>(module % 7);
    const double phase = 0.5 * static_cast<double>(module);
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t dataset = c / 16;
      double value = rng.normal(0.0, 0.05);
      if (dataset == d0 || dataset == d1) {
        value += std::sin(freq * static_cast<double>(c + 1) + phase);
      }
      m.set(r, c, static_cast<float>(value));
    }
  }
  return m;
}

void expect_tables_identical(const sm::NeighborTable& a,
                             const sm::NeighborTable& b) {
  ASSERT_EQ(a.count, b.count);
  ASSERT_EQ(a.k, b.k);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.distances, b.distances);
  EXPECT_EQ(a.valid, b.valid);
}

TEST(TopKPrunedTest, PrunesCrossModuleTilesAndStaysBitIdentical) {
  // 320 rows = 5 tile blocks over 4 modules with mostly-disjoint dataset
  // supports: cross-module tiles must actually prune under Pearson, and
  // the table must still be the exact top-k (checked against kExact bit
  // for bit and against the brute-force reference through the kAuto
  // helper). Spearman rides along for correctness only: the rank
  // transform hands the 64 uncorrelated noise cells a third of every
  // row's energy, which both flattens the segment-norm envelope and
  // inflates within-module distances past the cross-module bound — zero
  // prunes is the honest outcome there, and the accounting must say so.
  const auto m = block_module_matrix(320, 96, 80, 41);
  fv::par::ThreadPool pool(1);  // serial pool: prune stats deterministic
  for (const auto metric : {sm::Metric::kPearson, sm::Metric::kSpearman}) {
    const auto engine = sm::SimilarityEngine::from_rows(m, metric);
    sm::TopKStats stats;
    const auto pruned = engine.top_k_neighbors(
        5, pool, 0, sm::TopKStrategy::kPruned, &stats);
    const auto exact =
        engine.top_k_neighbors(5, pool, 0, sm::TopKStrategy::kExact);
    expect_tables_identical(pruned, exact);
    EXPECT_EQ(stats.tiles_total, engine.tile_count());
    EXPECT_EQ(stats.tiles_pruned + stats.tiles_computed, stats.tiles_total);
    EXPECT_LE(stats.bounds_checked, stats.tiles_total);
    if (metric == sm::Metric::kPearson) {
      EXPECT_GT(stats.tiles_pruned, 0u) << "cross-module tiles must prune";
    }
    expect_table_matches_reference(engine, 5, 0, pool);
  }
}

TEST(TopKPrunedTest, MultithreadedPrunedResultsAreScheduleIndependent) {
  // The threshold broadcast races benignly under a real pool: published
  // thresholds may be stale, which only changes how many tiles prune. The
  // returned table is the unique exact top-k every run.
  const auto m = block_module_matrix(300, 96, 75, 77);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool pool(4);
  const auto exact =
      engine.top_k_neighbors(6, pool, 0, sm::TopKStrategy::kExact);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto pruned =
        engine.top_k_neighbors(6, pool, 0, sm::TopKStrategy::kPruned);
    expect_tables_identical(pruned, exact);
  }
}

TEST(TopKPrunedTest, AllTiedBlocksNeverPruneAWinner) {
  // Adversarial: two alternating profiles make every distance tie at 0 or
  // at the one cross value, and the tile bounds sit exactly at the heap
  // thresholds. Equality must never prune (a tied pair with a smaller
  // index still displaces a heap entry), so the (distance, index) winners
  // must match the exact path entry for entry.
  ex::ExpressionMatrix m(130, 8);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double base = r % 2 == 0 ? std::sin(0.7 * (c + 1.0))
                                     : std::cos(0.9 * (c + 1.0));
      m.set(r, c, static_cast<float>(base));
    }
  }
  fv::par::ThreadPool pool(3);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  sm::TopKStats stats;
  const auto pruned = engine.top_k_neighbors(
      7, pool, 0, sm::TopKStrategy::kPruned, &stats);
  const auto exact =
      engine.top_k_neighbors(7, pool, 0, sm::TopKStrategy::kExact);
  expect_tables_identical(pruned, exact);
  expect_table_matches_reference(engine, 7, 0, pool);
}

TEST(TopKPrunedTest, HeavilyMaskedRowsWithMinCommonMatchExact) {
  // 40% missing leaves essentially every tile block with a masked row —
  // unprunable by design (pairwise-complete re-centering is unbounded by
  // full-row norms) — and min_common drops sparse overlaps entirely. The
  // pruned strategy must degrade to exact computation, not to wrong
  // tables.
  const auto m = random_matrix(150, 12, 0.4, 913);
  fv::par::ThreadPool pool(3);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  sm::TopKStats stats;
  const auto pruned = engine.top_k_neighbors(
      4, pool, 6, sm::TopKStrategy::kPruned, &stats);
  const auto exact =
      engine.top_k_neighbors(4, pool, 6, sm::TopKStrategy::kExact);
  expect_tables_identical(pruned, exact);
  EXPECT_EQ(stats.tiles_pruned + stats.tiles_computed, stats.tiles_total);
  expect_table_matches_reference(engine, 4, 6, pool);
}

TEST(TopKPrunedTest, KPastRowCountIsTheNoPruneDegenerateCase) {
  // k >= n - 1: a row's heap only fills once it has seen every candidate,
  // so thresholds publish too late to matter and every tile computes. The
  // pruned table must still be the full sorted neighbor list.
  const auto m = block_module_matrix(100, 96, 25, 5);
  fv::par::ThreadPool pool(2);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  sm::TopKStats stats;
  const auto pruned = engine.top_k_neighbors(
      200, pool, 0, sm::TopKStrategy::kPruned, &stats);
  const auto exact =
      engine.top_k_neighbors(200, pool, 0, sm::TopKStrategy::kExact);
  expect_tables_identical(pruned, exact);
  EXPECT_EQ(pruned.k, 99u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(pruned.neighbor_count(i), 99u);
  }
  expect_table_matches_reference(engine, 200, 0, pool);
}

TEST(TopKPrunedTest, EuclideanRejectsPrunedAndAutoFallsBackToExact) {
  const auto m = block_module_matrix(70, 96, 35, 9);
  fv::par::ThreadPool pool(2);
  const auto engine =
      sm::SimilarityEngine::from_rows(m, sm::Metric::kEuclidean);
  EXPECT_THROW(
      engine.top_k_neighbors(3, pool, 0, sm::TopKStrategy::kPruned),
      fv::InvalidArgument);
  // kAuto on Euclidean routes to the exact strategy and reports it.
  sm::TopKStats stats;
  const auto table = engine.top_k_neighbors(
      3, pool, 0, sm::TopKStrategy::kAuto, &stats);
  EXPECT_EQ(stats.tiles_pruned, 0u);
  EXPECT_EQ(stats.bounds_checked, 0u);
  EXPECT_EQ(stats.tiles_computed, stats.tiles_total);
  expect_table_matches_reference(engine, 3, 0, pool);
}

TEST(ForEachTileTest, DeliversEveryPairOnceWithPairwiseValues) {
  for (const std::size_t rows : {5u, 70u, 130u}) {
    const auto m = random_matrix(rows, 9, 0.15, 700 + rows);
    const auto engine =
        sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
    fv::par::ThreadPool pool(3);
    std::vector<int> visits(rows * rows, 0);
    std::vector<float> values(rows * rows, 0.0f);
    std::mutex mutex;
    std::size_t tiles_seen = 0;
    engine.for_each_tile(
        [&](const sm::DistanceTile& tile) {
          const std::lock_guard<std::mutex> lock(mutex);
          ++tiles_seen;
          EXPECT_LT(tile.index, engine.tile_count());
          for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
            for (std::size_t j = std::max(tile.col_begin, i + 1);
                 j < tile.col_end; ++j) {
              ++visits[i * rows + j];
              values[i * rows + j] = tile.at(i, j);
            }
          }
        },
        pool);
    EXPECT_EQ(tiles_seen, engine.tile_count());
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = i + 1; j < rows; ++j) {
        EXPECT_EQ(visits[i * rows + j], 1) << i << "," << j;
        EXPECT_EQ(values[i * rows + j], engine.distance(i, j));
      }
    }
  }
}

TEST(ForEachTileTest, SerialVariantMatchesPooled) {
  const auto m = random_matrix(70, 9, 0.1, 801);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  fv::par::ThreadPool pool(3);
  std::vector<float> pooled(fv::condensed_size(70), -1.0f);
  std::vector<float> serial(fv::condensed_size(70), -1.0f);
  engine.condensed_distances(pooled, pool);
  engine.for_each_tile([&](const sm::DistanceTile& tile) {
    for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
      for (std::size_t j = std::max(tile.col_begin, i + 1); j < tile.col_end;
           ++j) {
        serial[fv::condensed_index(i, j, 70)] = tile.at(i, j);
      }
    }
  });
  EXPECT_EQ(serial, pooled);
}

TEST(ForEachTileTest, MeanPairwiseDistanceMatchesBruteForce) {
  const auto m = random_matrix(70, 9, 0.1, 811);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  double total = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.rows(); ++j) {
      total += engine.distance(i, j);
    }
  }
  const double expected =
      total / static_cast<double>(fv::condensed_size(m.rows()));
  fv::par::ThreadPool pool(3);
  EXPECT_NEAR(engine.mean_pairwise_distance(pool), expected, 1e-9);
  EXPECT_NEAR(engine.mean_pairwise_distance(), expected, 1e-9);
  EXPECT_EQ(engine.mean_pairwise_distance(pool),
            engine.mean_pairwise_distance(pool));  // deterministic
}

// --- Float-accumulator dense kernel --------------------------------------

/// Flat dense random profiles (no missing cells — the float kernel serves
/// the dense fast path only).
std::vector<float> dense_profiles(std::size_t count, std::size_t length,
                                  std::uint64_t seed) {
  fv::Rng rng(seed);
  std::vector<float> flat(count * length);
  for (float& v : flat) {
    v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return flat;
}

TEST(FloatKernelTest, AutoEngagesAtAnyRowLength) {
  const auto probe = [](std::size_t length, sm::DenseKernel kernel) {
    const auto flat = dense_profiles(2, length, 1000 + length);
    return sm::SimilarityEngine::from_profiles(flat, 2, length,
                                               sm::Metric::kPearson,
                                               sm::Precompute::kAllPairs,
                                               kernel)
        .float_kernel_active();
  };
  // Auto: the compensated block flush (double drain every 256 elements)
  // holds the worst-case bound at (256/16) * 2^-24 regardless of stride,
  // so the old stride-256 fallback ceiling is gone.
  EXPECT_TRUE(probe(96, sm::DenseKernel::kAuto));
  EXPECT_TRUE(probe(256, sm::DenseKernel::kAuto));
  EXPECT_TRUE(probe(257, sm::DenseKernel::kAuto));
  EXPECT_TRUE(probe(10000, sm::DenseKernel::kAuto));
  // Forced kernels stay forced.
  EXPECT_FALSE(probe(96, sm::DenseKernel::kDouble));
  EXPECT_TRUE(probe(10000, sm::DenseKernel::kFloat));
  // Euclidean rows are unnormalized — the unit-norm bound does not apply,
  // so the float kernel never engages there.
  const auto flat = dense_profiles(2, 96, 77);
  EXPECT_FALSE(sm::SimilarityEngine::from_profiles(flat, 2, 96,
                                                   sm::Metric::kEuclidean)
                   .float_kernel_active());
}

TEST(FloatKernelTest, ErrorBoundAcrossRowLengths) {
  // The study behind the kAuto policy: forced-float vs the double
  // reference on dense random profiles across row lengths 96 -> 10k. With
  // the compensated block flush each float lane sums at most 256/16
  // products between double drains, so the worst-case bound is
  // (min(stride, 256) / 16) * 2^-24 at every length — measured error must
  // sit inside the 1e-6 contract everywhere (kAuto always engages now),
  // and inside the worst-case bound everywhere. Strides 512/1024/4096/10k
  // exercise 2/4/16/40 flush blocks.
  constexpr std::size_t kProfiles = 24;
  for (const std::size_t length :
       {96u, 160u, 256u, 512u, 1024u, 4096u, 10000u}) {
    const auto flat = dense_profiles(kProfiles, length, 2000 + length);
    const auto engine_f = sm::SimilarityEngine::from_profiles(
        flat, kProfiles, length, sm::Metric::kPearson,
        sm::Precompute::kAllPairs, sm::DenseKernel::kFloat);
    const auto engine_d = sm::SimilarityEngine::from_profiles(
        flat, kProfiles, length, sm::Metric::kPearson,
        sm::Precompute::kAllPairs, sm::DenseKernel::kDouble);
    ASSERT_TRUE(engine_f.float_kernel_active());
    ASSERT_FALSE(engine_d.float_kernel_active());
    double max_error = 0.0;
    for (std::size_t i = 0; i < kProfiles; ++i) {
      for (std::size_t j = i + 1; j < kProfiles; ++j) {
        max_error = std::max(max_error,
                             std::abs(engine_f.similarity(i, j) -
                                      engine_d.similarity(i, j)));
      }
    }
    const std::size_t stride = engine_f.stride();
    const double worst_case =
        static_cast<double>(std::min<std::size_t>(stride, 256) / 16) *
        std::ldexp(1.0, -24);
    EXPECT_LE(max_error, worst_case)
        << "length " << length << " measured " << max_error;
    EXPECT_LT(max_error, 1e-6)
        << "length " << length << " breaks the contract";
  }
}

TEST(FloatKernelTest, ForcedFloatStaysInsideScalarContractOnRealShapes) {
  // End-to-end: a typical compendium shape (96 conditions) under kAuto must
  // still match the scalar reference within the 1e-6 contract — the same
  // check sim_test runs, but explicitly pinned to the float kernel.
  const auto m = random_matrix(40, 96, 0.0, 3001);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  ASSERT_TRUE(engine.float_kernel_active());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.rows(); ++j) {
      const double reference =
          fv::cluster::profile_distance(m.row(i), m.row(j),
                                        sm::Metric::kPearson);
      EXPECT_NEAR(engine.distance(i, j), reference, 1e-6);
    }
  }
}

}  // namespace
