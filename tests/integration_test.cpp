// Integration tests: full cross-module pipelines.
//
//  * disk round trip: synthesize -> cluster -> save compendium dir ->
//    reload -> identical session behavior
//  * the complete paper workflow: select -> SPELL -> GOLEM -> wall render,
//    checking cross-module consistency at each hop
//  * failure injection at the pipeline level (corrupt directories, partial
//    files)
#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/hclust.hpp"
#include "core/adapters.hpp"
#include "core/app.hpp"
#include "expr/compendium_io.hpp"
#include "expr/gmt_io.hpp"
#include "expr/synth.hpp"
#include "go/obo_io.hpp"
#include "go/synth_ontology.hpp"
#include "stats/correlation.hpp"
#include "util/error.hpp"
#include "util/table_io.hpp"

namespace {

namespace ex = fv::expr;
namespace co = fv::core;
namespace fs = std::filesystem;

class CompendiumDirTest : public ::testing::Test {
 protected:
  // Unique per test: ctest runs cases in parallel processes, so a shared
  // directory would race between one test's TearDown and another's writes.
  std::string dir_ =
      (fs::temp_directory_path() /
       (std::string("fv_compendium_it_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name()))
          .string();
  void TearDown() override { fs::remove_all(dir_); }
};

ex::Compendium small_compendium(std::uint64_t seed = 404) {
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(300);
  spec.stress_datasets = 1;
  spec.nutrient_datasets = 1;
  spec.knockout_datasets = 1;
  spec.noise_datasets = 0;
  spec.seed = seed;
  return ex::make_compendium(spec);
}

TEST_F(CompendiumDirTest, SaveLoadRoundTripPreservesSessionBehavior) {
  auto compendium = small_compendium();
  // Cluster the first dataset so the directory mixes CDT and PCL files.
  fv::par::ThreadPool pool(2);
  fv::cluster::cluster_genes(compendium.datasets[0],
                             fv::cluster::Metric::kPearson,
                             fv::cluster::Linkage::kAverage, pool);
  const auto original_order = compendium.datasets[0].display_order();

  ex::save_compendium_dir(compendium.datasets, dir_);
  EXPECT_TRUE(fs::exists(dir_ + "/compendium.manifest"));
  EXPECT_TRUE(fs::exists(dir_ + "/stress_1.cdt"));
  EXPECT_TRUE(fs::exists(dir_ + "/stress_1.gtr"));
  EXPECT_TRUE(fs::exists(dir_ + "/nutrient_1.pcl"));

  auto reloaded = ex::load_compendium_dir(dir_);
  ASSERT_EQ(reloaded.size(), compendium.datasets.size());
  EXPECT_EQ(reloaded[0].name(), "stress_1");
  ASSERT_TRUE(reloaded[0].gene_tree().has_value());

  // The reloaded clustered dataset must present the same display order of
  // gene names (rows may be permuted on disk; semantics must survive).
  const auto reloaded_order = reloaded[0].display_order();
  ASSERT_EQ(reloaded_order.size(), original_order.size());
  for (std::size_t i = 0; i < original_order.size(); ++i) {
    EXPECT_EQ(
        compendium.datasets[0].gene(original_order[i]).systematic_name,
        reloaded[0].gene(reloaded_order[i]).systematic_name);
  }

  // Sessions over the original and reloaded compendia agree on a selection
  // propagated across datasets.
  co::Session session_a(std::move(compendium.datasets));
  co::Session session_b(std::move(reloaded));
  session_a.select_region(0, 10, 25);
  session_b.select_region(0, 10, 25);
  ASSERT_EQ(session_a.selection().size(), session_b.selection().size());
  for (std::size_t i = 0; i < session_a.selection().size(); ++i) {
    EXPECT_EQ(session_a.merged().catalog().name(
                  session_a.selection().ordered()[i]),
              session_b.merged().catalog().name(
                  session_b.selection().ordered()[i]));
  }
}

TEST_F(CompendiumDirTest, MissingManifestThrows) {
  fs::create_directories(dir_);
  EXPECT_THROW(ex::load_compendium_dir(dir_), fv::IoError);
}

TEST_F(CompendiumDirTest, ManifestEntryWithoutFileThrows) {
  fs::create_directories(dir_);
  fv::write_text_file(dir_ + "/compendium.manifest", "ghost_dataset\n");
  EXPECT_THROW(ex::load_compendium_dir(dir_), fv::IoError);
}

TEST_F(CompendiumDirTest, EmptyManifestThrows) {
  fs::create_directories(dir_);
  fv::write_text_file(dir_ + "/compendium.manifest", "# nothing here\n");
  EXPECT_THROW(ex::load_compendium_dir(dir_), fv::ParseError);
}

TEST_F(CompendiumDirTest, CorruptMemberFileThrows) {
  auto compendium = small_compendium();
  ex::save_compendium_dir(compendium.datasets, dir_);
  fv::write_text_file(dir_ + "/nutrient_1.pcl",
                      "ID\tNAME\tGWEIGHT\tc1\nYAL001C\tx\t1\tnot_a_number\n");
  EXPECT_THROW(ex::load_compendium_dir(dir_), fv::ParseError);
}

TEST_F(CompendiumDirTest, DatasetNameWithPathSeparatorRejected) {
  auto compendium = small_compendium();
  std::vector<ex::Dataset> bad;
  bad.emplace_back("../evil", compendium.datasets[0].genes(),
                   compendium.datasets[0].conditions(),
                   compendium.datasets[0].values());
  EXPECT_THROW(ex::save_compendium_dir(bad, dir_), fv::InvalidArgument);
}

TEST(FullPipelineTest, SelectSpellGolemWallStaysConsistent) {
  // The Figure-6 workflow end to end, with cross-module consistency checks.
  auto compendium = small_compendium(777);
  const auto genome_copy = compendium.genome;  // keep truth accessible
  const auto synth_go = fv::go::make_synth_ontology(genome_copy);

  // Query: a handful of ESR genes.
  std::vector<std::string> query;
  for (const std::size_t g : genome_copy.module_members("ESR_UP")) {
    query.push_back(genome_copy.gene(g).systematic_name);
    if (query.size() == 5) break;
  }

  co::Session session(std::move(compendium.datasets));
  const auto integration = co::apply_spell_search(session, query, 15);

  // 1. Panes were reordered to match SPELL's dataset ranking.
  ASSERT_EQ(session.pane_order().size(),
            integration.result.dataset_ranking.size());
  for (std::size_t i = 0; i < session.pane_order().size(); ++i) {
    EXPECT_EQ(session.pane_order()[i],
              integration.result.dataset_ranking[i].dataset_index);
  }

  // 2. The selection holds the query plus top hits, resolvable by name.
  EXPECT_GE(session.selection().size(), query.size());
  for (const std::string& name : query) {
    const auto id = session.merged().catalog().find(name);
    ASSERT_TRUE(id.has_value());
    EXPECT_TRUE(session.selection().contains(*id));
  }

  // 3. GOLEM on the selection recovers the planted ESR term.
  const auto enrichment =
      co::run_golem_on_selection(session, synth_go.propagated);
  ASSERT_FALSE(enrichment.terms.empty());
  EXPECT_EQ(enrichment.terms[0].term, synth_go.module_terms.at("ESR_UP"));
  EXPECT_LT(enrichment.terms[0].q_benjamini_hochberg, 1e-4);

  // 4. Wall render of the final state matches the desktop render exactly.
  co::ForestViewApp app(&session);
  const fv::wall::WallSpec spec{2, 2, 256, 192};
  co::FrameConfig config;
  config.width = static_cast<long>(spec.total_width());
  config.height = static_cast<long>(spec.total_height());
  const auto desktop = app.render_desktop(config);
  const auto wall = app.render_wall(spec);
  EXPECT_EQ(wall.frame, desktop);

  // 5. Export/import round trip of the final selection.
  const auto gmt_text = ex::format_gmt({session.export_selection("hits")});
  const auto sets = ex::parse_gmt(gmt_text);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].genes.size(), session.selection().size());
}

TEST(FullPipelineTest, Section4StudyFindsStressSignal) {
  // Condensed §4 pipeline as an always-on regression: the knockout-derived
  // cluster must correlate strongly inside the stress dataset.
  const auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(500), 55);
  ex::StressDatasetSpec stress_spec;
  stress_spec.missing_rate = 0.0;
  ex::KnockoutDatasetSpec ko_spec;
  ko_spec.knockouts = 80;
  ko_spec.slow_growth_fraction = 0.25;
  std::vector<ex::Dataset> datasets;
  datasets.push_back(ex::make_stress_dataset(genome, stress_spec, 1));
  datasets.push_back(ex::make_knockout_dataset(genome, ko_spec, 2).dataset);

  fv::par::ThreadPool pool(2);
  fv::cluster::cluster_genes(datasets[1], fv::cluster::Metric::kPearson,
                             fv::cluster::Linkage::kAverage, pool);
  const auto clusters =
      fv::cluster::cut_tree_at_similarity(*datasets[1].gene_tree(), 0.35);
  std::size_t best = 0;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    if (clusters[i].size() > clusters[best].size()) best = i;
  }
  ASSERT_GE(clusters[best].size(), 10u);

  co::Session session(std::move(datasets));
  std::vector<co::GeneId> picked;
  for (const std::size_t row : clusters[best]) {
    picked.push_back(session.merged().catalog().id_of_row(1, row));
  }
  session.select_from_analysis(picked, "clustering");

  // Cross-dataset correlation of the selected cluster inside stress data.
  std::vector<std::size_t> rows;
  for (const auto gene : session.selection().ordered()) {
    if (const auto row = session.merged().catalog().row_in(0, gene);
        row.has_value()) {
      rows.push_back(*row);
    }
  }
  ASSERT_GE(rows.size(), 10u);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < rows.size() && i < 30; ++i) {
    for (std::size_t j = i + 1; j < rows.size() && j < 30; ++j) {
      total += fv::stats::pearson(session.dataset(0).profile(rows[i]),
                                  session.dataset(0).profile(rows[j]));
      ++pairs;
    }
  }
  EXPECT_GT(total / static_cast<double>(pairs), 0.4)
      << "the knockout cluster must carry the stress signature";
}

TEST(FullPipelineTest, ObTheOboPathWorksAgainstGolem) {
  // Real-format path: serialize the synthetic ontology to OBO, reparse it,
  // and verify enrichment still works against the reparsed DAG.
  const auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(300), 66);
  const auto synth_go = fv::go::make_synth_ontology(genome);
  const std::string obo_text = fv::go::format_obo(*synth_go.ontology);
  const auto reparsed =
      std::make_shared<fv::go::Ontology>(fv::go::parse_obo(obo_text));
  ASSERT_EQ(reparsed->term_count(), synth_go.ontology->term_count());

  // Rebuild annotations against the reparsed ontology (term indices match
  // because format_obo preserves order).
  fv::go::AnnotationTable direct(reparsed);
  for (const std::string& gene : synth_go.direct.genes()) {
    for (const auto term : synth_go.direct.terms_of(gene)) {
      direct.annotate(gene, term);
    }
  }
  const auto propagated = direct.propagated();

  std::vector<std::string> query;
  for (const std::size_t g : genome.module_members("RP")) {
    query.push_back(genome.gene(g).systematic_name);
  }
  const auto result = fv::go::enrich(propagated, query);
  ASSERT_FALSE(result.terms.empty());
  EXPECT_EQ(result.terms[0].term, synth_go.module_terms.at("RP"));
}

}  // namespace
