// Endpoint contract suite for the serving layer (src/serve).
//
// Drives AnalysisService::handle directly (request-in/response-out — the
// HTTP socket layer is exercised separately at the end) and pins the
// contracts the clients and the chaos/bench layers rely on:
//   * session CRUD with a bounded session table,
//   * the async job lifecycle (submit 202 → poll → fetch),
//   * typed fv::Error → HTTP status mapping, malformed JSON → 400,
//   * cache-hit bit-identity, proven by the compute counter,
//   * deterministic request-path fault injection,
//   * client-abandoned job reaping on the logical request clock,
//   * the persistent blob cache across service restarts.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cluster/distance.hpp"
#include "cluster/hclust.hpp"
#include "expr/synth.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "store/artifact_store.hpp"
#include "store/fsck.hpp"

namespace {

namespace fs = std::filesystem;
using fv::serve::AnalysisService;
using fv::serve::HttpRequest;
using fv::serve::HttpResponse;
using fv::serve::JsonValue;

/// One small synthetic compendium + engine + SPELL banks, built once and
/// shared by every test (construction dominates test runtime otherwise).
struct Fixture {
  std::shared_ptr<const std::vector<fv::expr::Dataset>> datasets;
  fv::serve::SharedCompendium compendium;
  fv::par::ThreadPool compute_pool{2};

  Fixture() {
    fv::expr::CompendiumSpec spec;
    spec.genome = fv::expr::GenomeSpec::yeast_like(120);
    spec.seed = 7;
    auto owned = std::make_shared<std::vector<fv::expr::Dataset>>(
        fv::expr::make_compendium(spec).datasets);
    datasets = owned;
    auto engine = std::make_shared<fv::sim::SimilarityEngine>(
        fv::sim::SimilarityEngine::from_rows((*datasets)[0].values(),
                                             fv::sim::Metric::kPearson));
    auto spell = std::make_shared<fv::spell::SpellSearch>(*datasets,
                                                          compute_pool);
    compendium = fv::serve::make_shared_compendium(engine, datasets, spell);
  }
};

Fixture& fixture() {
  static Fixture* f = new Fixture;
  return *f;
}

HttpRequest make_request(const std::string& method, const std::string& path,
                         const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.path = path;
  request.body = body;
  return request;
}

/// Extracts a top-level string field from a JSON response body.
std::string field(const HttpResponse& response, const std::string& key) {
  const JsonValue body = fv::serve::parse_json(response.body);
  const JsonValue* value = body.find(key);
  if (value == nullptr) return "";
  if (value->type() == JsonValue::Type::kString) return value->as_string();
  return fv::serve::format_json_number(value->as_number());
}

std::string create_session(AnalysisService& service) {
  const HttpResponse response =
      service.handle(make_request("POST", "/sessions"));
  EXPECT_EQ(response.status, 201);
  return field(response, "session");
}

/// Submits a job and runs it to completion; returns the result bytes.
std::string run_to_result(AnalysisService& service, const std::string& sid,
                          const std::string& job_body) {
  const HttpResponse submit =
      service.handle(make_request("POST", "/sessions/" + sid + "/jobs",
                                  job_body));
  EXPECT_TRUE(submit.status == 202 || submit.status == 200) << submit.body;
  const std::string job = field(submit, "job");
  service.wait_job(job, std::chrono::seconds(60));
  const HttpResponse result = service.handle(
      make_request("GET", "/sessions/" + sid + "/jobs/" + job + "/result"));
  EXPECT_EQ(result.status, 200) << result.body;
  return result.body;
}

TEST(Serve, HealthzStatsAndUnknownEndpoints) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  EXPECT_EQ(service.handle(make_request("GET", "/healthz")).status, 200);
  EXPECT_EQ(service.handle(make_request("GET", "/stats")).status, 200);
  EXPECT_EQ(service.handle(make_request("GET", "/no/such/path")).status, 404);
  EXPECT_EQ(service.handle(make_request("PUT", "/healthz")).status, 405);
  EXPECT_EQ(service.handle(make_request("PUT", "/sessions")).status, 405);
}

TEST(Serve, SessionCrudLifecycle) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  const std::string sid = create_session(service);
  EXPECT_EQ(sid, "s1");

  HttpResponse list = service.handle(make_request("GET", "/sessions"));
  EXPECT_EQ(list.status, 200);
  EXPECT_EQ(field(list, "count"), "1");

  HttpResponse get = service.handle(make_request("GET", "/sessions/" + sid));
  EXPECT_EQ(get.status, 200);
  const JsonValue body = fv::serve::parse_json(get.body);
  EXPECT_EQ(body.find("id")->as_string(), sid);
  EXPECT_EQ(body.find("datasets")->as_number(),
            static_cast<double>(fixture().datasets->size()));
  EXPECT_EQ(body.find("selection")->as_number(), 0.0);

  EXPECT_EQ(service.handle(make_request("DELETE", "/sessions/" + sid)).status,
            200);
  EXPECT_EQ(service.handle(make_request("GET", "/sessions/" + sid)).status,
            404);
  EXPECT_EQ(service.handle(make_request("DELETE", "/sessions/" + sid)).status,
            404);
  EXPECT_EQ(service.session_count(), 0u);
}

TEST(Serve, SessionTableIsBounded) {
  AnalysisService::Options options;
  options.max_sessions = 2;
  AnalysisService service(fixture().compendium, fixture().compute_pool,
                          options);
  create_session(service);
  create_session(service);
  const HttpResponse third = service.handle(make_request("POST", "/sessions"));
  EXPECT_EQ(third.status, 503);
  EXPECT_NE(third.body.find("session table full"), std::string::npos);
}

TEST(Serve, SelectByNamesMutatesOnlyThatSession) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  const std::string a = create_session(service);
  const std::string b = create_session(service);
  const std::string gene = (*fixture().datasets)[0].gene(0).systematic_name;
  const HttpResponse select = service.handle(make_request(
      "POST", "/sessions/" + a + "/select", "{\"names\":[\"" + gene + "\"]}"));
  EXPECT_EQ(select.status, 200);
  EXPECT_EQ(field(select, "found"), "1");

  EXPECT_EQ(field(service.handle(make_request("GET", "/sessions/" + a)),
                  "selection"),
            "1");
  EXPECT_EQ(field(service.handle(make_request("GET", "/sessions/" + b)),
                  "selection"),
            "0");
}

TEST(Serve, MalformedAndInvalidRequestsAre400) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  const std::string sid = create_session(service);
  const std::string jobs = "/sessions/" + sid + "/jobs";
  // Malformed JSON body.
  EXPECT_EQ(service.handle(make_request("POST", jobs, "{bad")).status, 400);
  // Missing type.
  EXPECT_EQ(service.handle(make_request("POST", jobs, "{}")).status, 400);
  // Unknown type.
  EXPECT_EQ(
      service.handle(make_request("POST", jobs, "{\"type\":\"nope\"}")).status,
      400);
  // Ward linkage needs squared Euclidean input; this engine is Pearson.
  EXPECT_EQ(service
                .handle(make_request(
                    "POST", jobs,
                    "{\"type\":\"cluster\",\"linkage\":\"ward\"}"))
                .status,
            400);
  // k = 0 is meaningless.
  EXPECT_EQ(
      service.handle(make_request("POST", jobs, "{\"type\":\"topk\",\"k\":0}"))
          .status,
      400);
  // Empty SPELL query.
  EXPECT_EQ(service
                .handle(make_request("POST", jobs,
                                     "{\"type\":\"spell\",\"query\":[]}"))
                .status,
            400);
  // No job was admitted by any of these.
  EXPECT_EQ(service.stats().jobs_submitted.load(), 0u);
}

TEST(Serve, ErrorStatusMapping) {
  using fv::serve::error_http_status;
  EXPECT_EQ(error_http_status(fv::InvalidArgument("x")), 400);
  EXPECT_EQ(error_http_status(fv::ParseError("x")), 400);
  EXPECT_EQ(error_http_status(fv::OverloadedError("x")), 503);
  EXPECT_EQ(error_http_status(fv::TimeoutError("x")), 504);
  EXPECT_EQ(error_http_status(fv::CorruptArtifactError("x")), 502);
  EXPECT_EQ(error_http_status(fv::CorruptMessageError("x")), 502);
  EXPECT_EQ(error_http_status(fv::StaleArtifactError("x")), 502);
  EXPECT_EQ(error_http_status(fv::IoError("x")), 500);
  EXPECT_EQ(error_http_status(fv::LogicError("x")), 500);
  EXPECT_EQ(error_http_status(fv::Error("x")), 500);
}

TEST(Serve, JobLifecycleSubmitPollFetch) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  const std::string sid = create_session(service);
  const HttpResponse submit = service.handle(make_request(
      "POST", "/sessions/" + sid + "/jobs", "{\"type\":\"topk\",\"k\":3}"));
  EXPECT_EQ(submit.status, 202);
  const std::string job = field(submit, "job");
  EXPECT_EQ(job, "j1");
  EXPECT_EQ(field(submit, "state"), "queued");

  // Result before completion is 409 or (if the tiny job already finished)
  // 200 — never a dropped request. Poll with a bounded long-poll wait.
  // (query is a separate HttpRequest field; the socket parser splits it.)
  HttpRequest poll = make_request("GET", "/sessions/" + sid + "/jobs/" + job);
  poll.query["wait_ms"] = "30000";
  const HttpResponse status = service.handle(poll);
  EXPECT_EQ(status.status, 200);
  EXPECT_EQ(field(status, "state"), "done");

  const HttpResponse result = service.handle(
      make_request("GET", "/sessions/" + sid + "/jobs/" + job + "/result"));
  EXPECT_EQ(result.status, 200);
  const JsonValue body = fv::serve::parse_json(result.body);
  EXPECT_EQ(body.find("type")->as_string(), "topk");
  EXPECT_EQ(body.find("k")->as_number(), 3.0);

  // Unknown job / wrong session are 404.
  EXPECT_EQ(service
                .handle(make_request("GET",
                                     "/sessions/" + sid + "/jobs/j999"))
                .status,
            404);
  EXPECT_EQ(
      service.handle(make_request("GET", "/sessions/s999/jobs/" + job)).status,
      404);
}

TEST(Serve, CacheHitServesIdenticalBytesWithoutRecompute) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  const std::string sid = create_session(service);
  const std::string gene = (*fixture().datasets)[0].gene(0).systematic_name;
  const std::string params = "{\"type\":\"spell\",\"query\":[\"" + gene + "\"]}";

  const std::string first = run_to_result(service, sid, params);
  EXPECT_EQ(service.stats().computes.load(), 1u);
  EXPECT_EQ(service.stats().cache_hits.load(), 0u);

  // Same params again — even spelled differently (defaults explicit,
  // fields reordered) — must be served from the cache: born done, zero
  // extra computes, and the response bytes BIT-IDENTICAL to the cold ones.
  const HttpResponse submit = service.handle(make_request(
      "POST", "/sessions/" + sid + "/jobs",
      "{\"limit\":50,\"query\":[\"" + gene + "\"],\"type\":\"spell\"}"));
  EXPECT_EQ(submit.status, 200);
  const JsonValue submit_body = fv::serve::parse_json(submit.body);
  EXPECT_TRUE(submit_body.find("cached")->as_bool());
  EXPECT_EQ(submit_body.find("state")->as_string(), "done");

  const std::string job = submit_body.find("job")->as_string();
  const HttpResponse result = service.handle(
      make_request("GET", "/sessions/" + sid + "/jobs/" + job + "/result"));
  EXPECT_EQ(result.body, first);
  EXPECT_EQ(service.stats().computes.load(), 1u);
  EXPECT_EQ(service.stats().cache_hits.load(), 1u);

  // Different params are a different cache entry.
  run_to_result(service, sid,
                "{\"type\":\"spell\",\"query\":[\"" + gene +
                    "\"],\"limit\":5}");
  EXPECT_EQ(service.stats().computes.load(), 2u);
}

TEST(Serve, ClusterJobMatchesDirectComputation) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  const std::string sid = create_session(service);
  const std::string body = run_to_result(
      service, sid, "{\"type\":\"cluster\",\"linkage\":\"average\"}");
  const JsonValue parsed = fv::serve::parse_json(body);
  const std::size_t n = fixture().compendium.engine->size();
  EXPECT_EQ(parsed.find("n")->as_number(), static_cast<double>(n));
  ASSERT_EQ(parsed.find("merges")->items().size(), n - 1);

  // The served merges are exactly agglomerate() over the engine distances.
  fv::cluster::DistanceMatrix distances(n);
  fixture().compendium.engine->condensed_distances(distances.condensed(),
                                                   fixture().compute_pool);
  const std::vector<fv::cluster::Merge> merges = fv::cluster::agglomerate(
      std::move(distances), fv::cluster::Linkage::kAverage);
  const auto& served = parsed.find("merges")->items();
  ASSERT_EQ(served.size(), merges.size());
  for (std::size_t i = 0; i < merges.size(); ++i) {
    EXPECT_EQ(served[i].items()[0].as_number(),
              static_cast<double>(merges[i].left));
    EXPECT_EQ(served[i].items()[1].as_number(),
              static_cast<double>(merges[i].right));
    EXPECT_EQ(served[i].items()[2].as_number(), merges[i].distance);
  }
}

TEST(Serve, QueueSaturationIsTypedRejection) {
  AnalysisService::Options options;
  options.job_workers = 1;
  options.max_active_jobs = 2;
  AnalysisService service(fixture().compendium, fixture().compute_pool,
                          options);
  const std::string sid = create_session(service);
  // Three distinct jobs: with one worker and an admission bound of 2, the
  // third submit must be refused while the first two occupy the queue.
  std::vector<std::string> jobs;
  std::size_t rejected = 0;
  for (int k = 2; k <= 4; ++k) {
    const HttpResponse submit = service.handle(make_request(
        "POST", "/sessions/" + sid + "/jobs",
        "{\"type\":\"cluster\",\"linkage\":\"" +
            std::string(k == 2 ? "average" : k == 3 ? "single" : "complete") +
            "\"}"));
    if (submit.status == 503) {
      ++rejected;
      EXPECT_NE(submit.body.find("job queue full"), std::string::npos);
    } else {
      EXPECT_EQ(submit.status, 202);
      jobs.push_back(field(submit, "job"));
    }
  }
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(service.stats().jobs_rejected.load(), 1u);
  // The admitted jobs complete normally — saturation refused work, it
  // never corrupted the queue.
  for (const std::string& job : jobs) {
    service.wait_job(job, std::chrono::seconds(60));
  }
}

TEST(Serve, WaitJobTimesOutTyped) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  EXPECT_THROW(service.wait_job("j999", std::chrono::milliseconds(1)),
               fv::InvalidArgument);
}

TEST(Serve, AbandonedJobsAreReaped) {
  AnalysisService::Options options;
  options.job_ttl_requests = 3;
  AnalysisService service(fixture().compendium, fixture().compute_pool,
                          options);
  const std::string sid = create_session(service);
  const HttpResponse submit = service.handle(make_request(
      "POST", "/sessions/" + sid + "/jobs", "{\"type\":\"topk\",\"k\":2}"));
  const std::string job = field(submit, "job");
  service.wait_job(job, std::chrono::seconds(60));

  // The client walks away: 4 requests that never touch the job.
  for (int i = 0; i < 4; ++i) {
    service.handle(make_request("GET", "/healthz"));
  }
  EXPECT_GE(service.reap_abandoned(), 1u);
  EXPECT_EQ(service
                .handle(make_request("GET",
                                     "/sessions/" + sid + "/jobs/" + job))
                .status,
            404);
  // The session itself is untouched, and its job list no longer lists it.
  const HttpResponse get = service.handle(make_request("GET", "/sessions/" + sid));
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(fv::serve::parse_json(get.body).find("jobs")->items().size(), 0u);
}

TEST(Serve, FaultInjectionIsDeterministic) {
  AnalysisService::Options options;
  options.faults.seed = 99;
  options.faults.reject_rate = 0.3;

  const auto run = [&options]() {
    AnalysisService service(fixture().compendium, fixture().compute_pool,
                            options);
    std::vector<int> statuses;
    for (int i = 0; i < 40; ++i) {
      const HttpResponse response =
          service.handle(make_request("GET", "/healthz"));
      statuses.push_back(response.status);
      if (response.status == 503) {
        EXPECT_NE(response.body.find("\"injected\":true"), std::string::npos);
      }
    }
    EXPECT_GT(service.stats().injected_rejects.load(), 0u);
    return statuses;
  };

  EXPECT_EQ(run(), run());  // same seed → same rejected request set
}

TEST(Serve, PersistentBlobCacheSurvivesRestart) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("fv_serve_blob_test." + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string params = "{\"type\":\"topk\",\"k\":4,\"rows\":8}";

  std::string cold;
  {
    fv::store::ArtifactStore store(dir);
    AnalysisService::Options options;
    options.store = &store;
    AnalysisService service(fixture().compendium, fixture().compute_pool,
                            options);
    const std::string sid = create_session(service);
    cold = run_to_result(service, sid, params);
    EXPECT_EQ(service.stats().computes.load(), 1u);
  }
  {
    // A "restarted server": fresh service, same store, empty memory cache.
    fv::store::ArtifactStore store(dir);
    AnalysisService::Options options;
    options.store = &store;
    AnalysisService service(fixture().compendium, fixture().compute_pool,
                            options);
    const std::string sid = create_session(service);
    const std::string warm = run_to_result(service, sid, params);
    EXPECT_EQ(warm, cold);  // bit-identical across processes
    EXPECT_EQ(service.stats().computes.load(), 0u);
    EXPECT_EQ(service.stats().cache_hits.load(), 1u);
  }
  EXPECT_TRUE(fv::store::fsck_scan(dir).clean());
  fs::remove_all(dir);
}

TEST(Serve, HttpRoundTripOverSockets) {
  AnalysisService service(fixture().compendium, fixture().compute_pool);
  fv::serve::HttpServer server(
      [&service](const HttpRequest& request) { return service.handle(request); });

  const auto exchange = [&server](const std::string& raw) {
    return fv::serve::http_exchange(server.port(), raw);
  };

  // Create a session over the wire.
  const std::string created =
      exchange("POST /sessions HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(created.find("HTTP/1.1 201 Created"), std::string::npos);
  EXPECT_NE(created.find("\"session\":\"s1\""), std::string::npos);

  // Submit + long-poll + fetch; the wire result equals the direct result.
  const std::string body = "{\"type\":\"topk\",\"k\":2,\"rows\":4}";
  const std::string submitted = exchange(
      "POST /sessions/s1/jobs HTTP/1.1\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(submitted.find("HTTP/1.1 202 Accepted"), std::string::npos);

  const std::string polled =
      exchange("GET /sessions/s1/jobs/j1?wait_ms=30000 HTTP/1.1\r\n\r\n");
  EXPECT_NE(polled.find("\"state\":\"done\""), std::string::npos);

  const std::string fetched =
      exchange("GET /sessions/s1/jobs/j1/result HTTP/1.1\r\n\r\n");
  const std::size_t split = fetched.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  const std::string wire_body = fetched.substr(split + 4);
  const std::string direct = run_to_result(service, "s1", body);
  EXPECT_EQ(wire_body, direct);

  // Malformed request line → 400 from the HTTP layer itself.
  EXPECT_NE(exchange("NONSENSE\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_GE(server.requests_served(), 4u);
  server.stop();
}

TEST(ServeJson, ParseDumpRoundTripIsCanonical) {
  const std::string canonical =
      "{\"a\":[1,2.5,true,null,\"x\"],\"b\":{\"nested\":-3}}";
  const JsonValue parsed = fv::serve::parse_json(canonical);
  EXPECT_EQ(parsed.dump(), canonical);
  // Key order in the input does not matter — dump() sorts.
  EXPECT_EQ(fv::serve::parse_json("{\"b\":1,\"a\":2}").dump(),
            "{\"a\":2,\"b\":1}");
  // Escapes round-trip.
  EXPECT_EQ(fv::serve::parse_json("\"a\\nb\\u0041\"").dump(), "\"a\\nbA\"");
}

TEST(ServeJson, MalformedInputIsTypedParseError) {
  EXPECT_THROW(fv::serve::parse_json(""), fv::ParseError);
  EXPECT_THROW(fv::serve::parse_json("{"), fv::ParseError);
  EXPECT_THROW(fv::serve::parse_json("{}x"), fv::ParseError);
  EXPECT_THROW(fv::serve::parse_json("{'a':1}"), fv::ParseError);
  EXPECT_THROW(fv::serve::parse_json("[1,]"), fv::ParseError);
  EXPECT_THROW(fv::serve::parse_json("\"\\ud800\""), fv::ParseError);
  EXPECT_THROW(fv::serve::parse_json("1e999"), fv::ParseError);  // infinite
  // Nesting bound: 100 levels deep must be refused, not crash the stack.
  EXPECT_THROW(
      fv::serve::parse_json(std::string(100, '[') + std::string(100, ']')),
      fv::ParseError);
}

TEST(ServeJson, NumberFormattingIsFixed) {
  EXPECT_EQ(fv::serve::format_json_number(0.0), "0");
  EXPECT_EQ(fv::serve::format_json_number(42.0), "42");
  EXPECT_EQ(fv::serve::format_json_number(-7.0), "-7");
  EXPECT_EQ(fv::serve::format_json_number(2.5), "2.5");
  // Round-trip: parse(dump(x)) == x bit-exactly.
  const double value = 0.30479964613914490;
  const std::string printed = fv::serve::format_json_number(value);
  EXPECT_EQ(fv::serve::parse_json(printed).as_number(), value);
}

TEST(ServeHttp, RequestParsing) {
  const HttpRequest request = fv::serve::parse_http_request(
      "POST /a/b?x=1&y=hello%20world HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 2\r\n"
      "\r\n"
      "{}");
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path, "/a/b");
  EXPECT_EQ(request.query.at("x"), "1");
  EXPECT_EQ(request.query.at("y"), "hello world");
  EXPECT_EQ(request.headers.at("content-type"), "application/json");
  EXPECT_EQ(request.body, "{}");

  EXPECT_THROW(fv::serve::parse_http_request("GET\r\n\r\n"), fv::ParseError);
  EXPECT_THROW(fv::serve::parse_http_request("GET / HTTP/1.1\r\n"),
               fv::ParseError);
  EXPECT_THROW(fv::serve::parse_http_request(
                   "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"),
               fv::ParseError);
  EXPECT_THROW(
      fv::serve::parse_http_request(std::string(64, 'x'), /*max_bytes=*/16),
      fv::ParseError);
}

}  // namespace
