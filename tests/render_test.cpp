// Tests for the software rasterizer: framebuffer, primitives, font,
// colormaps, heatmaps and dendrograms.
#include <gtest/gtest.h>

#include <cmath>

#include "expr/tree.hpp"
#include "render/colormap.hpp"
#include "render/dendrogram.hpp"
#include "render/draw.hpp"
#include "render/font.hpp"
#include "render/framebuffer.hpp"
#include "render/heatmap.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace {

namespace rd = fv::render;
using rd::Framebuffer;
using rd::Rgb8;

std::size_t count_pixels(const Framebuffer& fb, Rgb8 color) {
  std::size_t n = 0;
  for (const Rgb8& p : fb.pixels()) {
    if (p == color) ++n;
  }
  return n;
}

TEST(FramebufferTest, ConstructionAndFill) {
  Framebuffer fb(10, 5, rd::colors::kBlue);
  EXPECT_EQ(fb.width(), 10u);
  EXPECT_EQ(fb.height(), 5u);
  EXPECT_EQ(count_pixels(fb, rd::colors::kBlue), 50u);
}

TEST(FramebufferTest, SetGetAndBounds) {
  Framebuffer fb(4, 4);
  fb.set(3, 2, rd::colors::kRed);
  EXPECT_EQ(fb.at(3, 2), rd::colors::kRed);
  EXPECT_THROW(fb.at(4, 0), fv::InvalidArgument);
  EXPECT_THROW(fb.set(0, 4, rd::colors::kRed), fv::InvalidArgument);
}

TEST(FramebufferTest, ClippedWritesIgnoreOutOfRange) {
  Framebuffer fb(4, 4);
  fb.set_clipped(-1, 0, rd::colors::kRed);
  fb.set_clipped(0, 100, rd::colors::kRed);
  EXPECT_EQ(count_pixels(fb, rd::colors::kRed), 0u);
}

TEST(FramebufferTest, BlitPlacesAndClips) {
  Framebuffer src(3, 3, rd::colors::kGreen);
  Framebuffer dst(5, 5);
  dst.blit(src, 3, 3);  // bottom-right corner; partially clipped
  EXPECT_EQ(count_pixels(dst, rd::colors::kGreen), 4u);
  EXPECT_EQ(dst.at(4, 4), rd::colors::kGreen);
  EXPECT_EQ(dst.at(2, 2), rd::colors::kBlack);
}

TEST(FramebufferTest, CropExtractsRegion) {
  Framebuffer fb(6, 6);
  rd::fill_rect(fb, 2, 2, 2, 2, rd::colors::kYellow);
  const Framebuffer crop = fb.crop(2, 2, 2, 2);
  EXPECT_EQ(count_pixels(crop, rd::colors::kYellow), 4u);
}

TEST(FramebufferTest, DiffCountMatchesChanges) {
  Framebuffer a(4, 4), b(4, 4);
  EXPECT_EQ(a.diff_count(b), 0u);
  b.set(0, 0, rd::colors::kRed);
  b.set(3, 3, rd::colors::kRed);
  EXPECT_EQ(a.diff_count(b), 2u);
  Framebuffer c(3, 3);
  EXPECT_THROW(a.diff_count(c), fv::InvalidArgument);
}

TEST(PpmTest, RoundTripExact) {
  Framebuffer fb(7, 3);
  fb.set(0, 0, Rgb8{1, 2, 3});
  fb.set(6, 2, Rgb8{250, 128, 7});
  const Framebuffer parsed = rd::parse_ppm(rd::format_ppm(fb));
  EXPECT_EQ(parsed, fb);
}

TEST(PpmTest, RejectsMalformedHeaders) {
  EXPECT_THROW(rd::parse_ppm("P5\n1 1\n255\nx"), fv::ParseError);
  EXPECT_THROW(rd::parse_ppm("P6\n2 2\n255\nxx"), fv::ParseError);
}

TEST(DrawTest, FillRectClips) {
  Framebuffer fb(8, 8);
  rd::fill_rect(fb, -2, -2, 4, 4, rd::colors::kRed);
  EXPECT_EQ(count_pixels(fb, rd::colors::kRed), 4u);  // 2x2 visible corner
  rd::fill_rect(fb, 0, 0, 0, 5, rd::colors::kGreen);  // degenerate: no-op
  EXPECT_EQ(count_pixels(fb, rd::colors::kGreen), 0u);
}

TEST(DrawTest, RectOutlinePerimeter) {
  Framebuffer fb(10, 10);
  rd::draw_rect(fb, 1, 1, 5, 4, rd::colors::kWhite);
  // Perimeter of a 5x4 rect: 2*5 + 2*4 - 4 = 14 pixels.
  EXPECT_EQ(count_pixels(fb, rd::colors::kWhite), 14u);
}

TEST(DrawTest, LineEndpointsAndDiagonal) {
  Framebuffer fb(10, 10);
  rd::draw_line(fb, 0, 0, 9, 9, rd::colors::kRed);
  EXPECT_EQ(fb.at(0, 0), rd::colors::kRed);
  EXPECT_EQ(fb.at(9, 9), rd::colors::kRed);
  EXPECT_EQ(fb.at(5, 5), rd::colors::kRed);
  EXPECT_EQ(count_pixels(fb, rd::colors::kRed), 10u);
}

TEST(DrawTest, HlineVlineInclusiveAndSwapped) {
  Framebuffer fb(10, 10);
  rd::draw_hline(fb, 7, 2, 3, rd::colors::kBlue);  // reversed endpoints
  EXPECT_EQ(count_pixels(fb, rd::colors::kBlue), 6u);
  rd::draw_vline(fb, 0, 8, 4, rd::colors::kGreen);
  EXPECT_EQ(count_pixels(fb, rd::colors::kGreen), 5u);
}

TEST(FontTest, KnownGlyphsExist) {
  for (char c : std::string("ABCXYZ0189-_.:()HSP26yal001c")) {
    EXPECT_TRUE(rd::has_glyph(c)) << "missing glyph for " << c;
  }
  EXPECT_FALSE(rd::has_glyph('~'));
}

TEST(FontTest, TextWidthFormula) {
  EXPECT_EQ(rd::text_width(""), 0);
  EXPECT_EQ(rd::text_width("A"), 5);
  EXPECT_EQ(rd::text_width("AB"), 11);
}

TEST(FontTest, DrawTextMarksPixels) {
  Framebuffer fb(40, 10);
  const long end = rd::draw_text(fb, 0, 0, "YAL", rd::colors::kWhite);
  EXPECT_EQ(end, 18);  // 3 glyphs * 6 advance
  EXPECT_GT(count_pixels(fb, rd::colors::kWhite), 20u);
}

TEST(FontTest, ScaledTextCoversScaledArea) {
  Framebuffer fb1(20, 20), fb2(20, 20);
  rd::draw_text(fb1, 0, 0, "I", rd::colors::kWhite, 1);
  rd::draw_text(fb2, 0, 0, "I", rd::colors::kWhite, 2);
  EXPECT_EQ(count_pixels(fb2, rd::colors::kWhite),
            4 * count_pixels(fb1, rd::colors::kWhite));
}

TEST(ColormapTest, RedGreenEndpoints) {
  const rd::ExpressionColormap map(rd::ColorScheme::kRedGreen, 2.0);
  EXPECT_EQ(map.map(0.0f), rd::colors::kBlack);
  EXPECT_EQ(map.map(2.0f), rd::colors::kRed);
  EXPECT_EQ(map.map(5.0f), rd::colors::kRed);  // saturates
  EXPECT_EQ(map.map(-2.0f), rd::colors::kGreen);
  EXPECT_EQ(map.map(fv::stats::missing_value()), rd::colors::kMissing);
}

TEST(ColormapTest, IntermediateValuesInterpolate) {
  const rd::ExpressionColormap map(rd::ColorScheme::kRedGreen, 2.0);
  const Rgb8 half = map.map(1.0f);
  EXPECT_GT(half.r, 100);
  EXPECT_LT(half.r, 160);
  EXPECT_EQ(half.g, 0);
}

TEST(ColormapTest, ContrastAdjustsSaturationPoint) {
  const rd::ExpressionColormap weak(rd::ColorScheme::kRedGreen, 4.0);
  const rd::ExpressionColormap strong = weak.with_contrast(1.0);
  EXPECT_LT(weak.map(1.0f).r, strong.map(1.0f).r);
  EXPECT_EQ(strong.map(1.0f), rd::colors::kRed);
}

TEST(ColormapTest, GrayscaleMonotone) {
  const rd::ExpressionColormap map(rd::ColorScheme::kGrayscale, 1.0);
  EXPECT_LT(map.map(-1.0f).r, map.map(0.0f).r);
  EXPECT_LT(map.map(0.0f).r, map.map(1.0f).r);
}

TEST(ColormapTest, InvalidContrastThrows) {
  EXPECT_THROW(rd::ExpressionColormap(rd::ColorScheme::kRedGreen, 0.0),
               fv::InvalidArgument);
}

fv::expr::ExpressionMatrix checker_matrix(std::size_t rows,
                                          std::size_t cols) {
  fv::expr::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, (r + c) % 2 == 0 ? 2.0f : -2.0f);
    }
  }
  return m;
}

TEST(HeatmapTest, CellColorsMatchValues) {
  const auto m = checker_matrix(3, 3);
  const rd::ExpressionColormap map(rd::ColorScheme::kRedGreen, 2.0);
  Framebuffer fb(30, 30);
  const std::vector<std::size_t> order{0, 1, 2};
  rd::render_heatmap(fb, m, order, map, 0, 0, 10, 10);
  EXPECT_EQ(fb.at(5, 5), rd::colors::kRed);     // (0,0) = +2
  EXPECT_EQ(fb.at(15, 5), rd::colors::kGreen);  // (0,1) = -2
  EXPECT_EQ(fb.at(15, 15), rd::colors::kRed);   // (1,1) = +2
}

TEST(HeatmapTest, RowOrderPermutesRows) {
  fv::expr::ExpressionMatrix m(2, 1);
  m.set(0, 0, 2.0f);
  m.set(1, 0, -2.0f);
  const rd::ExpressionColormap map(rd::ColorScheme::kRedGreen, 2.0);
  Framebuffer fb(4, 8);
  const std::vector<std::size_t> order{1, 0};
  rd::render_heatmap(fb, m, order, map, 0, 0, 4, 4);
  EXPECT_EQ(fb.at(1, 1), rd::colors::kGreen);  // row 1 drawn first
  EXPECT_EQ(fb.at(1, 5), rd::colors::kRed);
}

TEST(HeatmapTest, MissingCellsUseMissingColor) {
  fv::expr::ExpressionMatrix m(1, 1);
  const rd::ExpressionColormap map;
  Framebuffer fb(4, 4);
  const std::vector<std::size_t> order{0};
  rd::render_heatmap(fb, m, order, map, 0, 0, 4, 4);
  EXPECT_EQ(fb.at(2, 2), rd::colors::kMissing);
}

TEST(HeatmapTest, BadRowOrderThrows) {
  const auto m = checker_matrix(2, 2);
  const rd::ExpressionColormap map;
  Framebuffer fb(10, 10);
  const std::vector<std::size_t> order{5};
  EXPECT_THROW(rd::render_heatmap(fb, m, order, map, 0, 0, 2, 2),
               fv::InvalidArgument);
}

TEST(GlobalViewTest, DownsamplesWithAveraging) {
  // Top half strongly positive, bottom half strongly negative: the global
  // view strip must show red above, green below.
  fv::expr::ExpressionMatrix m(20, 4);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      m.set(r, c, r < 10 ? 2.0f : -2.0f);
    }
  }
  std::vector<std::size_t> order(20);
  for (std::size_t i = 0; i < 20; ++i) order[i] = i;
  const rd::ExpressionColormap map(rd::ColorScheme::kRedGreen, 2.0);
  Framebuffer fb(10, 10);
  rd::render_global_view(fb, m, order, map, 0, 0, 10, 10);
  EXPECT_EQ(fb.at(5, 1), rd::colors::kRed);
  EXPECT_EQ(fb.at(5, 8), rd::colors::kGreen);
}

TEST(GlobalViewTest, EmptyInputPaintsMissing) {
  fv::expr::ExpressionMatrix m(0, 0);
  const rd::ExpressionColormap map;
  Framebuffer fb(5, 5);
  rd::render_global_view(fb, m, {}, map, 0, 0, 5, 5);
  EXPECT_EQ(count_pixels(fb, rd::colors::kMissing), 25u);
}

TEST(DendrogramTest, DrawsConnectedTree) {
  fv::expr::HierTree tree(3);
  const int a = tree.add_node(0, 1, 0.9);
  tree.add_node(a, 2, 0.2);
  Framebuffer fb(40, 30);
  rd::draw_gene_dendrogram(fb, tree, 0, 0, 40, 10, rd::colors::kWhite);
  // Some pixels must be drawn, and leaf rows must each touch the right edge
  // region (leaves sit at depth 0 = right edge).
  EXPECT_GT(count_pixels(fb, rd::colors::kWhite), 20u);
  EXPECT_EQ(fb.at(39, 5), rd::colors::kWhite);   // leaf 0 (display slot 0)
  EXPECT_EQ(fb.at(39, 15), rd::colors::kWhite);  // leaf 1
  EXPECT_EQ(fb.at(39, 25), rd::colors::kWhite);  // leaf 2
}

TEST(DendrogramTest, ArrayVariantDraws) {
  fv::expr::HierTree tree(4);
  const int a = tree.add_node(0, 1, 0.8);
  const int b = tree.add_node(2, 3, 0.7);
  tree.add_node(a, b, 0.1);
  Framebuffer fb(40, 20);
  rd::draw_array_dendrogram(fb, tree, 0, 0, 20, 10, rd::colors::kWhite);
  EXPECT_GT(count_pixels(fb, rd::colors::kWhite), 20u);
  EXPECT_EQ(fb.at(5, 19), rd::colors::kWhite);  // leaf 0 at bottom edge
}

TEST(DendrogramTest, InvertedTreeRendersProportionally) {
  // Centroid/median trees can invert: here the root joins at similarity
  // -0.5 while its child merged at -1.0 (the child is the DEEPEST merge).
  // Depth must normalize against that deepest merge, so the child's
  // junction lands on the far-left edge and the root's strictly inside —
  // a clamping renderer would pile both onto the left edge.
  fv::expr::HierTree tree(3);
  const int child = tree.add_node(0, 1, -1.0);
  tree.add_node(child, 2, -0.5);
  Framebuffer fb(41, 30);
  rd::draw_gene_dendrogram(fb, tree, 0, 0, 41, 10, rd::colors::kWhite);
  // Child junction: depth (1 - (-1.0)) / 2.0 = 1.0 -> x = 0; its vertical
  // connector spans the leaf-0/leaf-1 centers (y = 5..15).
  EXPECT_EQ(fb.at(0, 10), rd::colors::kWhite);
  // Root junction: depth (1 - (-0.5)) / 2.0 = 0.75 -> x = 10; connector
  // spans the child junction (y = 10) to leaf 2 (y = 25).
  EXPECT_EQ(fb.at(10, 20), rd::colors::kWhite);
  // Nothing but the child junction may touch the left edge — the root
  // rendered to the RIGHT of its child (the inversion is visible).
  EXPECT_NE(fb.at(0, 20), rd::colors::kWhite);
}

TEST(DendrogramTest, TooSmallAreaThrows) {
  fv::expr::HierTree tree(2);
  tree.add_node(0, 1, 0.5);
  Framebuffer fb(10, 10);
  EXPECT_THROW(
      rd::draw_gene_dendrogram(fb, tree, 0, 0, 1, 1, rd::colors::kWhite),
      fv::InvalidArgument);
}

}  // namespace
