// Agglomerator equivalence suite: the NN-chain and heap agglomerators must
// reproduce greedy global-minimum agglomeration — same merge set and
// heights on distinct-distance inputs, identical cut_tree_k partitions
// everywhere, including adversarial tied-distance matrices — for every
// linkage each path supports. Also covers the height-inversion pipeline:
// median/centroid inversions must survive canonicalize_merges,
// merges_to_tree and the tree cuts unclamped.
//
// The reference here is the O(n^3) greedy scan (merge the globally closest
// active pair every step) with the Lance–Williams update written in its
// textbook coefficient form α_a·d_ak + α_b·d_bk + β·d_ab + γ·|d_ak − d_bk|
// — deliberately a different formulation from the library's switch, so the
// two implementations cross-check each other. The reducible trio matches
// what the seed's nearest-neighbor-cached agglomerator was property-tested
// against before the NN-chain rewrite; it is therefore a faithful stand-in
// for the seed's trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "cluster/distance.hpp"
#include "cluster/hclust.hpp"
#include "expr/synth.hpp"
#include "util/rng.hpp"

namespace {

namespace cl = fv::cluster;
namespace ex = fv::expr;

/// Lance–Williams coefficients (α_a, α_b, β, γ) for merging clusters of
/// sizes na/nb, evaluated against a third cluster of size nk.
struct LwCoefficients {
  double alpha_a = 0.0, alpha_b = 0.0, beta = 0.0, gamma = 0.0;
};

LwCoefficients lw_coefficients(cl::Linkage linkage, double na, double nb,
                               double nk) {
  switch (linkage) {
    case cl::Linkage::kSingle:
      return {0.5, 0.5, 0.0, -0.5};
    case cl::Linkage::kComplete:
      return {0.5, 0.5, 0.0, 0.5};
    case cl::Linkage::kAverage:
      return {na / (na + nb), nb / (na + nb), 0.0, 0.0};
    case cl::Linkage::kWard:
      return {(na + nk) / (na + nb + nk), (nb + nk) / (na + nb + nk),
              -nk / (na + nb + nk), 0.0};
    case cl::Linkage::kCentroid:
      return {na / (na + nb), nb / (na + nb),
              -na * nb / ((na + nb) * (na + nb)), 0.0};
    case cl::Linkage::kMedian:
      return {0.5, 0.5, -0.25, 0.0};
  }
  return {};
}

std::vector<cl::Merge> reference_agglomerate(cl::DistanceMatrix distances,
                                             cl::Linkage linkage) {
  const std::size_t n = distances.size();
  std::vector<bool> active(n, true);
  std::vector<std::size_t> size(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);
  std::vector<cl::Merge> merges;
  for (std::size_t step = 0; step + 1 < n; ++step) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (distances.at(i, j) < best) {
          best = distances.at(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    merges.push_back(cl::Merge{node_id[bi], node_id[bj], best});
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      const LwCoefficients c =
          lw_coefficients(linkage, static_cast<double>(size[bi]),
                          static_cast<double>(size[bj]),
                          static_cast<double>(size[k]));
      const double d_ak = distances.at(bi, k);
      const double d_bk = distances.at(bj, k);
      const double updated = c.alpha_a * d_ak + c.alpha_b * d_bk +
                             c.beta * best + c.gamma * std::abs(d_ak - d_bk);
      distances.set(bi, k, static_cast<float>(updated));
    }
    active[bj] = false;
    size[bi] += size[bj];
    node_id[bi] = static_cast<int>(n + step);
  }
  if (cl::linkage_uses_squared_distances(linkage)) {
    // Match agglomerate()'s output convention: the recurrence ran on
    // squared distances, heights come back in plain distance units.
    for (cl::Merge& merge : merges) {
      merge.distance = std::sqrt(std::max(merge.distance, 0.0));
    }
  }
  return merges;
}

constexpr cl::Linkage kAllLinkages[] = {
    cl::Linkage::kSingle, cl::Linkage::kComplete, cl::Linkage::kAverage};

constexpr cl::Linkage kAllSixLinkages[] = {
    cl::Linkage::kSingle,   cl::Linkage::kComplete, cl::Linkage::kAverage,
    cl::Linkage::kWard,     cl::Linkage::kCentroid, cl::Linkage::kMedian};

constexpr cl::Linkage kSquaredLinkages[] = {
    cl::Linkage::kWard, cl::Linkage::kCentroid, cl::Linkage::kMedian};

/// Random point cloud in R^dim -> squared Euclidean condensed matrix, the
/// input form Ward/centroid/median run on. Random *matrices* would not do:
/// non-Euclidean dissimilarities can drive the centroid/median recurrences
/// to negative "squared distances", which no realizable input produces.
cl::DistanceMatrix squared_point_cloud_distances(std::size_t n,
                                                 std::size_t dim,
                                                 fv::Rng& rng) {
  std::vector<double> points(n * dim);
  for (double& coordinate : points) coordinate = rng.uniform(-1.0, 1.0);
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < dim; ++k) {
        const double diff = points[i * dim + k] - points[j * dim + k];
        sum += diff * diff;
      }
      d.set(i, j, static_cast<float>(sum));
    }
  }
  return d;
}

/// Canonical form of a partition: clusters as sorted leaf lists, sorted.
std::vector<std::vector<std::size_t>> canonical_partition(
    std::vector<std::vector<std::size_t>> clusters) {
  for (auto& cluster : clusters) std::sort(cluster.begin(), cluster.end());
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

void expect_same_merges(const std::vector<cl::Merge>& chain,
                        const std::vector<cl::Merge>& reference) {
  ASSERT_EQ(chain.size(), reference.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_NEAR(chain[i].distance, reference[i].distance, 1e-6)
        << "merge " << i;
    const auto chain_pair = std::minmax(chain[i].left, chain[i].right);
    const auto ref_pair = std::minmax(reference[i].left, reference[i].right);
    EXPECT_EQ(chain_pair, ref_pair) << "merge " << i;
  }
}

void expect_same_cuts(const std::vector<cl::Merge>& chain,
                      const std::vector<cl::Merge>& reference,
                      std::size_t leaf_count,
                      const std::vector<std::size_t>& ks,
                      cl::HeightOrder order = cl::HeightOrder::kMonotone) {
  const auto chain_tree =
      cl::merges_to_tree(chain, leaf_count, cl::correlation_similarity, order);
  const auto ref_tree = cl::merges_to_tree(reference, leaf_count,
                                           cl::correlation_similarity, order);
  for (const std::size_t k : ks) {
    EXPECT_EQ(canonical_partition(cl::cut_tree_k(chain_tree, k)),
              canonical_partition(cl::cut_tree_k(ref_tree, k)))
        << "k = " << k;
  }
}

std::vector<std::size_t> all_ks(std::size_t n) {
  std::vector<std::size_t> ks(n);
  std::iota(ks.begin(), ks.end(), 1);
  return ks;
}

// --- Shape 1: random distance matrices (distinct values) ------------------

TEST(NNChainEquivalenceTest, RandomMatricesMatchSeedAgglomerator) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    fv::Rng rng(seed);
    const std::size_t n = 8 + seed % 17;
    cl::DistanceMatrix d(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        d.set(i, j, static_cast<float>(rng.uniform(0.01, 2.0)));
      }
    }
    for (const auto linkage : kAllLinkages) {
      const auto chain = cl::agglomerate(d, linkage);
      const auto reference = reference_agglomerate(d, linkage);
      expect_same_merges(chain, reference);
      expect_same_cuts(chain, reference, n, all_ks(n));
    }
  }
}

// --- Shape 2: real expression profiles (engine-built distances) -----------

TEST(NNChainEquivalenceTest, ExpressionDistancesMatchSeedAgglomerator) {
  const auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(60), 31);
  ex::StressDatasetSpec spec;
  spec.missing_rate = 0.02;
  const auto ds = ex::make_stress_dataset(genome, spec, 32);
  fv::par::ThreadPool pool(2);
  const auto d =
      cl::row_distances(ds.values(), cl::Metric::kPearson, pool);
  for (const auto linkage : kAllLinkages) {
    const auto chain = cl::agglomerate(d, linkage);
    const auto reference = reference_agglomerate(d, linkage);
    expect_same_merges(chain, reference);
    expect_same_cuts(chain, reference, d.size(), all_ks(d.size()));
  }
}

// --- Shape 3: adversarial tied distances ----------------------------------
// Block-structured matrix where every within-block distance is the SAME
// value and every between-block distance is another, larger value: ties
// everywhere, so any greedy step has many equally valid choices. The
// algorithms may disagree on the internal merge order, but heights and the
// partitions at block-aligned k must be identical.

TEST(NNChainEquivalenceTest, TiedBlockDistancesSamePartitions) {
  constexpr std::size_t kBlocks = 4;
  constexpr std::size_t kPerBlock = 6;
  constexpr std::size_t n = kBlocks * kPerBlock;
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_block = i / kPerBlock == j / kPerBlock;
      d.set(i, j, same_block ? 0.25f : 1.0f);
    }
  }
  for (const auto linkage : kAllLinkages) {
    const auto chain = cl::agglomerate(d, linkage);
    const auto reference = reference_agglomerate(d, linkage);
    ASSERT_EQ(chain.size(), reference.size());
    // Heights match step for step even where the merged pairs differ.
    for (std::size_t i = 0; i < chain.size(); ++i) {
      EXPECT_NEAR(chain[i].distance, reference[i].distance, 1e-6)
          << "merge " << i;
    }
    // Cuts at block-aligned k (ties inside a band make other k ambiguous
    // by construction, for the seed agglomerator just as much).
    expect_same_cuts(chain, reference, n, {1, kBlocks, n});
  }
}

// Tied distances where whole tied groups merge at one height, plus one
// strictly closer pair — exercises the chain's tie handling next to a
// distinct minimum.
TEST(NNChainEquivalenceTest, TiedPairsNextToDistinctMinimum) {
  constexpr std::size_t n = 9;
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_triplet = i / 3 == j / 3;
      d.set(i, j, same_triplet ? 0.5f : 2.0f);
    }
  }
  d.set(0, 1, 0.1f);  // the unique global minimum
  for (const auto linkage : kAllLinkages) {
    const auto chain = cl::agglomerate(d, linkage);
    const auto reference = reference_agglomerate(d, linkage);
    ASSERT_EQ(chain.size(), reference.size());
    // The first merge is forced; heights must agree throughout.
    EXPECT_NEAR(chain.front().distance, 0.1, 1e-6);
    for (std::size_t i = 0; i < chain.size(); ++i) {
      EXPECT_NEAR(chain[i].distance, reference[i].distance, 1e-6);
    }
    expect_same_cuts(chain, reference, n, {1, 3, n});
  }
}

// --- Out-of-order merge lists reach merges_to_tree unharmed ---------------

TEST(NNChainEquivalenceTest, MergesToTreeAcceptsEmissionOrder) {
  // Hand-built chain-emission order: the second-emitted merge is LOWER than
  // the first (a deep chain merged its tail first). merges_to_tree must
  // canonicalize before building the tree.
  // Leaves 0..3; emission: (2,3)@0.9 -> node 4, (0,1)@0.2 -> node 5,
  // (5,4)@1.5 -> node 6.
  const std::vector<cl::Merge> emission{
      {2, 3, 0.9}, {0, 1, 0.2}, {5, 4, 1.5}};
  const auto tree = cl::merges_to_tree(emission, 4,
                                       cl::negated_similarity);
  EXPECT_TRUE(tree.is_complete());
  // Canonical order: (0,1)@0.2 is node 4, (2,3)@0.9 is node 5, root joins
  // them at 1.5.
  EXPECT_EQ(canonical_partition(cl::cut_tree_k(tree, 2)),
            canonical_partition({{0, 1}, {2, 3}}));
  const auto canonical = cl::canonicalize_merges(emission, 4);
  ASSERT_EQ(canonical.size(), 3u);
  EXPECT_DOUBLE_EQ(canonical[0].distance, 0.2);
  EXPECT_DOUBLE_EQ(canonical[1].distance, 0.9);
  EXPECT_DOUBLE_EQ(canonical[2].distance, 1.5);
  EXPECT_EQ(std::minmax(canonical[0].left, canonical[0].right),
            std::minmax(0, 1));
  EXPECT_EQ(std::minmax(canonical[1].left, canonical[1].right),
            std::minmax(2, 3));
  EXPECT_EQ(std::minmax(canonical[2].left, canonical[2].right),
            std::minmax(4, 5));
}

// --- Heap agglomerator vs brute force, all six linkages -------------------

// Ward/centroid/median on squared point-cloud distances: the heap path (and
// for Ward, the NN-chain dispatch) must reproduce the greedy reference's
// merge set and heights. Distinct distances with probability 1, so trees
// are unique.
TEST(HeapEquivalenceTest, SquaredLinkagesMatchBruteForceOnPointClouds) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    fv::Rng rng(seed);
    const std::size_t n = 8 + seed % 17;
    const auto d = squared_point_cloud_distances(n, 6, rng);
    for (const auto linkage : kSquaredLinkages) {
      const auto reference = reference_agglomerate(d, linkage);
      const auto order = cl::linkage_can_invert(linkage)
                             ? cl::HeightOrder::kAllowInversions
                             : cl::HeightOrder::kMonotone;
      // kAuto dispatch (NN-chain for Ward, heap for centroid/median)...
      expect_same_merges(cl::agglomerate(d, linkage), reference);
      // ...and the heap forced explicitly, for every linkage.
      const auto heap =
          cl::agglomerate(d, linkage, cl::Agglomerator::kHeap);
      expect_same_merges(heap, reference);
      expect_same_cuts(heap, reference, n, all_ks(n), order);
    }
  }
}

// The heap path is also valid (if pointless in production) for the
// reducible trio; forcing it must still match the reference exactly.
TEST(HeapEquivalenceTest, ReducibleLinkagesMatchBruteForceUnderForcedHeap) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    fv::Rng rng(seed);
    const std::size_t n = 8 + seed % 13;
    cl::DistanceMatrix d(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        d.set(i, j, static_cast<float>(rng.uniform(0.01, 2.0)));
      }
    }
    for (const auto linkage : kAllLinkages) {
      const auto heap = cl::agglomerate(d, linkage, cl::Agglomerator::kHeap);
      const auto reference = reference_agglomerate(d, linkage);
      expect_same_merges(heap, reference);
      expect_same_cuts(heap, reference, n, all_ks(n));
    }
  }
}

// All-tied adversarial blocks (realizable as squared distances, so the
// centroid/median recurrences stay meaningful): merge orders may differ
// under ties, but block-aligned partitions must not.
TEST(HeapEquivalenceTest, TiedBlockPartitionsAllSixLinkages) {
  constexpr std::size_t kBlocks = 4;
  constexpr std::size_t kPerBlock = 5;
  constexpr std::size_t n = kBlocks * kPerBlock;
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_block = i / kPerBlock == j / kPerBlock;
      d.set(i, j, same_block ? 0.25f : 4.0f);
    }
  }
  for (const auto linkage : kAllSixLinkages) {
    const auto order = cl::linkage_can_invert(linkage)
                           ? cl::HeightOrder::kAllowInversions
                           : cl::HeightOrder::kMonotone;
    const auto heap = cl::agglomerate(d, linkage, cl::Agglomerator::kHeap);
    const auto reference = reference_agglomerate(d, linkage);
    ASSERT_EQ(heap.size(), reference.size());
    expect_same_cuts(heap, reference, n, {1, kBlocks, n}, order);
  }
}

// NN-chain must refuse the linkages it cannot run correctly.
TEST(HeapEquivalenceTest, NNChainRejectsNonReducibleLinkages) {
  cl::DistanceMatrix d(3);
  d.set(0, 1, 1.0f);
  d.set(0, 2, 1.0f);
  d.set(1, 2, 1.0f);
  EXPECT_THROW(cl::agglomerate(d, cl::Linkage::kCentroid,
                               cl::Agglomerator::kNNChain),
               fv::InvalidArgument);
  EXPECT_THROW(
      cl::agglomerate(d, cl::Linkage::kMedian, cl::Agglomerator::kNNChain),
      fv::InvalidArgument);
}

// --- Height inversions survive the full pipeline --------------------------

// The equilateral triangle is the textbook centroid inversion: two points
// merge at distance 1, and the third point sits sqrt(3)/2 ≈ 0.866 from
// their midpoint — the parent lands BELOW its child.
TEST(InversionTest, EquilateralTriangleInvertsUnderCentroidAndMedian) {
  cl::DistanceMatrix d(3);  // squared side length 1
  d.set(0, 1, 1.0f);
  d.set(0, 2, 1.0f);
  d.set(1, 2, 1.0f);
  for (const auto linkage : {cl::Linkage::kCentroid, cl::Linkage::kMedian}) {
    const auto merges = cl::agglomerate(d, linkage);
    ASSERT_EQ(merges.size(), 2u);
    EXPECT_NEAR(merges[0].distance, 1.0, 1e-6);
    EXPECT_NEAR(merges[1].distance, std::sqrt(3.0) / 2.0, 1e-6);
    EXPECT_LT(merges[1].distance, merges[0].distance);  // genuine inversion

    // The inversion reaches the HierTree unclamped...
    const auto tree = cl::merges_to_tree(merges, 3, cl::negated_similarity,
                                         cl::HeightOrder::kAllowInversions);
    const double child = tree.node(3).similarity;
    const double root = tree.node(4).similarity;
    EXPECT_NEAR(child, -1.0, 1e-6);
    EXPECT_NEAR(root, -std::sqrt(3.0) / 2.0, 1e-6);
    EXPECT_GT(root, child);  // similarity inverts with the height

    // ...while the monotone contract correctly refuses it (0.134 is far
    // beyond rounding noise).
    EXPECT_THROW(cl::merges_to_tree(merges, 3, cl::negated_similarity),
                 fv::InvalidArgument);
  }
}

TEST(InversionTest, CanonicalizeAllowInversionsKeepsChildrenFirst) {
  // Leaves 0..4; emission order: (2,3)@0.9 -> node 5, (0,1)@0.2 -> node 6,
  // then the parent of node 6 DIPS to 0.1 (inversion), root joins at 1.0.
  const std::vector<cl::Merge> emission{
      {2, 3, 0.9}, {0, 1, 0.2}, {6, 4, 0.1}, {7, 5, 1.0}};
  const auto canonical = cl::canonicalize_merges(
      emission, 5, cl::HeightOrder::kAllowInversions);
  ASSERT_EQ(canonical.size(), 4u);
  // Lowest-ready-first: (0,1)@0.2 precedes (2,3)@0.9; the @0.1 parent can
  // only emerge after its child but keeps its dipped height.
  EXPECT_DOUBLE_EQ(canonical[0].distance, 0.2);
  EXPECT_DOUBLE_EQ(canonical[1].distance, 0.1);
  EXPECT_DOUBLE_EQ(canonical[2].distance, 0.9);
  EXPECT_DOUBLE_EQ(canonical[3].distance, 1.0);
  // Children before parents throughout (node 5+k created by merge k).
  for (std::size_t k = 0; k < canonical.size(); ++k) {
    EXPECT_LT(canonical[k].left, static_cast<int>(5 + k));
    EXPECT_LT(canonical[k].right, static_cast<int>(5 + k));
  }
  // The dip's child is merge 0's node (id 5): the @0.1 merge consumes it.
  EXPECT_EQ(std::minmax(canonical[1].left, canonical[1].right),
            std::minmax(5, 4));
}

TEST(InversionTest, CutTreeKPartitionsInvertedTrees) {
  // Two tight triangles far apart, clustered by centroid: each triangle
  // closes with an inversion, then the triangles join at the top.
  constexpr std::size_t n = 6;
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same = (i < 3) == (j < 3);
      d.set(i, j, same ? 1.0f : 100.0f);
    }
  }
  const auto merges = cl::agglomerate(d, cl::Linkage::kCentroid);
  const auto tree = cl::merges_to_tree(merges, n, cl::negated_similarity,
                                       cl::HeightOrder::kAllowInversions);
  for (std::size_t k = 1; k <= n; ++k) {
    const auto clusters = cl::cut_tree_k(tree, k);
    EXPECT_EQ(clusters.size(), k);
    std::size_t total = 0;
    for (const auto& cluster : clusters) total += cluster.size();
    EXPECT_EQ(total, n);  // a partition, even with inverted heights
  }
  // k = 2 must split the two triangles.
  EXPECT_EQ(canonical_partition(cl::cut_tree_k(tree, 2)),
            canonical_partition({{0, 1, 2}, {3, 4, 5}}));
}

TEST(InversionTest, CutTreeAtSimilarityUsesSubtreeMinimum) {
  // Hand-built inverted tree: node 4 = (0,1)@0.9, node 5 = (2,3)@0.5,
  // root 6 = (4,5)@0.7 — the root sits ABOVE node 5 in similarity.
  fv::expr::HierTree tree(4);
  tree.add_node(0, 1, 0.9);
  tree.add_node(2, 3, 0.5);
  tree.add_node(4, 5, 0.7);
  // At threshold 0.6 the root clears its own similarity but its subtree
  // does not ("all internal merges >= threshold" is the contract): {0,1}
  // stays a cluster, {2} and {3} fall apart.
  EXPECT_EQ(canonical_partition(cl::cut_tree_at_similarity(tree, 0.6)),
            canonical_partition({{0, 1}, {2}, {3}}));
  // Below every merge the whole tree is one cluster.
  EXPECT_EQ(cl::cut_tree_at_similarity(tree, 0.4).size(), 1u);
}

TEST(NNChainEquivalenceTest, CanonicalizeRejectsBrokenForests) {
  // Child id beyond the emission frontier.
  EXPECT_THROW(cl::canonicalize_merges({{0, 5, 0.1}}, 4),
               fv::InvalidArgument);
  // A node consumed twice.
  EXPECT_THROW(
      cl::canonicalize_merges({{0, 1, 0.1}, {4, 2, 0.2}, {4, 3, 0.3}}, 4),
      fv::InvalidArgument);
  // Heights inverted far beyond rounding noise (child above parent).
  EXPECT_THROW(
      cl::canonicalize_merges({{0, 1, 5.0}, {4, 2, 0.1}, {5, 3, 6.0}}, 4),
      fv::InvalidArgument);
}

}  // namespace
