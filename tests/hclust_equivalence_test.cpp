// NN-chain equivalence suite: the chain agglomerator must reproduce the
// seed's greedy global-minimum agglomeration — same merge set and heights
// on distinct-distance inputs, identical cut_tree_k partitions everywhere,
// including adversarial tied-distance matrices.
//
// The reference here is the O(n^3) greedy scan (merge the globally closest
// active pair every step), which the seed's nearest-neighbor-cached
// agglomerator was property-tested against before the NN-chain rewrite; it
// is therefore a faithful stand-in for the seed's trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "cluster/distance.hpp"
#include "cluster/hclust.hpp"
#include "expr/synth.hpp"
#include "util/rng.hpp"

namespace {

namespace cl = fv::cluster;
namespace ex = fv::expr;

std::vector<cl::Merge> reference_agglomerate(cl::DistanceMatrix distances,
                                             cl::Linkage linkage) {
  const std::size_t n = distances.size();
  std::vector<bool> active(n, true);
  std::vector<std::size_t> size(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);
  std::vector<cl::Merge> merges;
  for (std::size_t step = 0; step + 1 < n; ++step) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (distances.at(i, j) < best) {
          best = distances.at(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    merges.push_back(cl::Merge{node_id[bi], node_id[bj], best});
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double updated = 0.0;
      switch (linkage) {
        case cl::Linkage::kSingle:
          updated = std::min(distances.at(bi, k), distances.at(bj, k));
          break;
        case cl::Linkage::kComplete:
          updated = std::max(distances.at(bi, k), distances.at(bj, k));
          break;
        case cl::Linkage::kAverage:
          updated = (static_cast<double>(size[bi]) * distances.at(bi, k) +
                     static_cast<double>(size[bj]) * distances.at(bj, k)) /
                    static_cast<double>(size[bi] + size[bj]);
          break;
      }
      distances.set(bi, k, static_cast<float>(updated));
    }
    active[bj] = false;
    size[bi] += size[bj];
    node_id[bi] = static_cast<int>(n + step);
  }
  return merges;
}

constexpr cl::Linkage kAllLinkages[] = {
    cl::Linkage::kSingle, cl::Linkage::kComplete, cl::Linkage::kAverage};

/// Canonical form of a partition: clusters as sorted leaf lists, sorted.
std::vector<std::vector<std::size_t>> canonical_partition(
    std::vector<std::vector<std::size_t>> clusters) {
  for (auto& cluster : clusters) std::sort(cluster.begin(), cluster.end());
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

void expect_same_merges(const std::vector<cl::Merge>& chain,
                        const std::vector<cl::Merge>& reference) {
  ASSERT_EQ(chain.size(), reference.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_NEAR(chain[i].distance, reference[i].distance, 1e-6)
        << "merge " << i;
    const auto chain_pair = std::minmax(chain[i].left, chain[i].right);
    const auto ref_pair = std::minmax(reference[i].left, reference[i].right);
    EXPECT_EQ(chain_pair, ref_pair) << "merge " << i;
  }
}

void expect_same_cuts(const std::vector<cl::Merge>& chain,
                      const std::vector<cl::Merge>& reference,
                      std::size_t leaf_count,
                      const std::vector<std::size_t>& ks) {
  const auto chain_tree =
      cl::merges_to_tree(chain, leaf_count, cl::correlation_similarity);
  const auto ref_tree =
      cl::merges_to_tree(reference, leaf_count, cl::correlation_similarity);
  for (const std::size_t k : ks) {
    EXPECT_EQ(canonical_partition(cl::cut_tree_k(chain_tree, k)),
              canonical_partition(cl::cut_tree_k(ref_tree, k)))
        << "k = " << k;
  }
}

std::vector<std::size_t> all_ks(std::size_t n) {
  std::vector<std::size_t> ks(n);
  std::iota(ks.begin(), ks.end(), 1);
  return ks;
}

// --- Shape 1: random distance matrices (distinct values) ------------------

TEST(NNChainEquivalenceTest, RandomMatricesMatchSeedAgglomerator) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    fv::Rng rng(seed);
    const std::size_t n = 8 + seed % 17;
    cl::DistanceMatrix d(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        d.set(i, j, static_cast<float>(rng.uniform(0.01, 2.0)));
      }
    }
    for (const auto linkage : kAllLinkages) {
      const auto chain = cl::agglomerate(d, linkage);
      const auto reference = reference_agglomerate(d, linkage);
      expect_same_merges(chain, reference);
      expect_same_cuts(chain, reference, n, all_ks(n));
    }
  }
}

// --- Shape 2: real expression profiles (engine-built distances) -----------

TEST(NNChainEquivalenceTest, ExpressionDistancesMatchSeedAgglomerator) {
  const auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(60), 31);
  ex::StressDatasetSpec spec;
  spec.missing_rate = 0.02;
  const auto ds = ex::make_stress_dataset(genome, spec, 32);
  fv::par::ThreadPool pool(2);
  const auto d =
      cl::row_distances(ds.values(), cl::Metric::kPearson, pool);
  for (const auto linkage : kAllLinkages) {
    const auto chain = cl::agglomerate(d, linkage);
    const auto reference = reference_agglomerate(d, linkage);
    expect_same_merges(chain, reference);
    expect_same_cuts(chain, reference, d.size(), all_ks(d.size()));
  }
}

// --- Shape 3: adversarial tied distances ----------------------------------
// Block-structured matrix where every within-block distance is the SAME
// value and every between-block distance is another, larger value: ties
// everywhere, so any greedy step has many equally valid choices. The
// algorithms may disagree on the internal merge order, but heights and the
// partitions at block-aligned k must be identical.

TEST(NNChainEquivalenceTest, TiedBlockDistancesSamePartitions) {
  constexpr std::size_t kBlocks = 4;
  constexpr std::size_t kPerBlock = 6;
  constexpr std::size_t n = kBlocks * kPerBlock;
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_block = i / kPerBlock == j / kPerBlock;
      d.set(i, j, same_block ? 0.25f : 1.0f);
    }
  }
  for (const auto linkage : kAllLinkages) {
    const auto chain = cl::agglomerate(d, linkage);
    const auto reference = reference_agglomerate(d, linkage);
    ASSERT_EQ(chain.size(), reference.size());
    // Heights match step for step even where the merged pairs differ.
    for (std::size_t i = 0; i < chain.size(); ++i) {
      EXPECT_NEAR(chain[i].distance, reference[i].distance, 1e-6)
          << "merge " << i;
    }
    // Cuts at block-aligned k (ties inside a band make other k ambiguous
    // by construction, for the seed agglomerator just as much).
    expect_same_cuts(chain, reference, n, {1, kBlocks, n});
  }
}

// Tied distances where whole tied groups merge at one height, plus one
// strictly closer pair — exercises the chain's tie handling next to a
// distinct minimum.
TEST(NNChainEquivalenceTest, TiedPairsNextToDistinctMinimum) {
  constexpr std::size_t n = 9;
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_triplet = i / 3 == j / 3;
      d.set(i, j, same_triplet ? 0.5f : 2.0f);
    }
  }
  d.set(0, 1, 0.1f);  // the unique global minimum
  for (const auto linkage : kAllLinkages) {
    const auto chain = cl::agglomerate(d, linkage);
    const auto reference = reference_agglomerate(d, linkage);
    ASSERT_EQ(chain.size(), reference.size());
    // The first merge is forced; heights must agree throughout.
    EXPECT_NEAR(chain.front().distance, 0.1, 1e-6);
    for (std::size_t i = 0; i < chain.size(); ++i) {
      EXPECT_NEAR(chain[i].distance, reference[i].distance, 1e-6);
    }
    expect_same_cuts(chain, reference, n, {1, 3, n});
  }
}

// --- Out-of-order merge lists reach merges_to_tree unharmed ---------------

TEST(NNChainEquivalenceTest, MergesToTreeAcceptsEmissionOrder) {
  // Hand-built chain-emission order: the second-emitted merge is LOWER than
  // the first (a deep chain merged its tail first). merges_to_tree must
  // canonicalize before building the tree.
  // Leaves 0..3; emission: (2,3)@0.9 -> node 4, (0,1)@0.2 -> node 5,
  // (5,4)@1.5 -> node 6.
  const std::vector<cl::Merge> emission{
      {2, 3, 0.9}, {0, 1, 0.2}, {5, 4, 1.5}};
  const auto tree = cl::merges_to_tree(emission, 4,
                                       cl::negated_similarity);
  EXPECT_TRUE(tree.is_complete());
  // Canonical order: (0,1)@0.2 is node 4, (2,3)@0.9 is node 5, root joins
  // them at 1.5.
  EXPECT_EQ(canonical_partition(cl::cut_tree_k(tree, 2)),
            canonical_partition({{0, 1}, {2, 3}}));
  const auto canonical = cl::canonicalize_merges(emission, 4);
  ASSERT_EQ(canonical.size(), 3u);
  EXPECT_DOUBLE_EQ(canonical[0].distance, 0.2);
  EXPECT_DOUBLE_EQ(canonical[1].distance, 0.9);
  EXPECT_DOUBLE_EQ(canonical[2].distance, 1.5);
  EXPECT_EQ(std::minmax(canonical[0].left, canonical[0].right),
            std::minmax(0, 1));
  EXPECT_EQ(std::minmax(canonical[1].left, canonical[1].right),
            std::minmax(2, 3));
  EXPECT_EQ(std::minmax(canonical[2].left, canonical[2].right),
            std::minmax(4, 5));
}

TEST(NNChainEquivalenceTest, CanonicalizeRejectsBrokenForests) {
  // Child id beyond the emission frontier.
  EXPECT_THROW(cl::canonicalize_merges({{0, 5, 0.1}}, 4),
               fv::InvalidArgument);
  // A node consumed twice.
  EXPECT_THROW(
      cl::canonicalize_merges({{0, 1, 0.1}, {4, 2, 0.2}, {4, 3, 0.3}}, 4),
      fv::InvalidArgument);
  // Heights inverted far beyond rounding noise (child above parent).
  EXPECT_THROW(
      cl::canonicalize_merges({{0, 1, 5.0}, {4, 2, 0.1}, {5, 3, 6.0}}, 4),
      fv::InvalidArgument);
}

}  // namespace
