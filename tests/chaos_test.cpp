// Chaos matrix for the fault-tolerant display wall (and the mpx deadline
// collectives underneath it): seeded fault scenarios sweeping drop / delay /
// duplicate / corrupt / crash, every one of which must end in one of exactly
// two ways within bounded time — a frame pixel-identical to the single-pass
// reference, or a typed fv::Error. Never a deadlock, never a silently wrong
// frame. Seeds make every scenario replayable: a failure here reproduces
// with the same seed, every run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "mpx/communicator.hpp"
#include "render/canvas.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wall/command.hpp"
#include "wall/wall_display.hpp"

namespace {

namespace wl = fv::wall;
namespace mpx = fv::mpx;
namespace rd = fv::render;

using Clock = std::chrono::steady_clock;

/// Deterministic scene exercising every primitive (small: chaos scenarios
/// re-render tiles several times on a single-core CI box).
wl::CommandList chaos_scene(std::uint64_t seed, long width, long height) {
  fv::Rng rng(seed);
  wl::RecordingCanvas canvas;
  for (std::size_t i = 0; i < 60; ++i) {
    const long x =
        static_cast<long>(rng.uniform_u64(static_cast<std::uint64_t>(width)));
    const long y =
        static_cast<long>(rng.uniform_u64(static_cast<std::uint64_t>(height)));
    const long w = 1 + static_cast<long>(rng.uniform_u64(60));
    const long h = 1 + static_cast<long>(rng.uniform_u64(40));
    const rd::Rgb8 color{static_cast<std::uint8_t>(rng.uniform_u64(256)),
                         static_cast<std::uint8_t>(rng.uniform_u64(256)),
                         static_cast<std::uint8_t>(rng.uniform_u64(256))};
    switch (rng.uniform_u64(4)) {
      case 0:
        canvas.fill_rect(x, y, w, h, color);
        break;
      case 1:
        canvas.draw_rect(x, y, w, h, color);
        break;
      case 2:
        canvas.line(x, y, x + w, y + h, color);
        break;
      default:
        canvas.text(x, y, "G" + std::to_string(i), color, 1);
        break;
    }
  }
  return canvas.take();
}

struct ChaosScenario {
  const char* name;
  std::uint64_t seed = 0;
  double drop = 0.0;
  double delay = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  int crash_rank = -1;
  std::uint64_t crash_at_op = 1;
  /// 1 = the frame must be degraded, 0 = must not be, -1 = either is fine
  /// (probabilistic faults may or may not hit a tile-critical message).
  int expect_degraded = -1;
};

class WallChaosTest : public ::testing::TestWithParam<ChaosScenario> {};

TEST_P(WallChaosTest, FrameCompletesPixelIdenticalInBoundedTime) {
  const ChaosScenario& scenario = GetParam();

  const wl::WallSpec spec{3, 2, 48, 36};
  const auto commands =
      chaos_scene(100 + scenario.seed, static_cast<long>(spec.total_width()),
                  static_cast<long>(spec.total_height()));
  const auto reference =
      wl::render_reference(commands, spec.total_width(), spec.total_height());

  wl::WallOptions options;
  options.node_count = 3;
  // Generous windows: CI may be single-core, and a flaky deadline would
  // make the determinism claim hollow. Correctness never depends on these
  // values — only elapsed time does.
  options.tile_deadline = std::chrono::milliseconds(150);
  options.retry_backoff = std::chrono::milliseconds(5);
  options.faults.seed = scenario.seed;
  options.faults.drop_rate = scenario.drop;
  options.faults.delay_rate = scenario.delay;
  options.faults.duplicate_rate = scenario.duplicate;
  options.faults.corrupt_rate = scenario.corrupt;
  options.faults.delay = std::chrono::milliseconds(10);
  options.faults.crash_rank = scenario.crash_rank;
  options.faults.crash_at_op = scenario.crash_at_op;

  const auto start = Clock::now();
  const auto result = wl::render_wall_frame(commands, spec, options);
  const auto elapsed = Clock::now() - start;

  // The two invariants every scenario must keep: the frame is exactly the
  // reference (degradation costs time, never pixels), and the whole ladder
  // — including node watchdogs — finishes in bounded time.
  EXPECT_EQ(result.frame, reference) << "scenario " << scenario.name;
  EXPECT_LT(elapsed, std::chrono::seconds(30))
      << "scenario " << scenario.name << " exceeded its time bound";

  if (scenario.expect_degraded == 1) {
    EXPECT_TRUE(result.stats.degraded) << "scenario " << scenario.name;
  } else if (scenario.expect_degraded == 0) {
    EXPECT_FALSE(result.stats.degraded) << "scenario " << scenario.name;
    EXPECT_EQ(result.stats.retries, 0u);
    EXPECT_EQ(result.stats.reassigned_tiles, 0u);
    EXPECT_EQ(result.stats.master_rastered_tiles, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WallChaosTest,
    ::testing::Values(
        // Healthy deadline-mode frame: the fault hooks are live but silent.
        ChaosScenario{"healthy", 1, 0, 0, 0, 0, -1, 1, 0},
        // Light packet loss, three seeds.
        ChaosScenario{"drop_light_a", 2, 0.15},
        ChaosScenario{"drop_light_b", 3, 0.15},
        ChaosScenario{"drop_light_c", 4, 0.15},
        // Heavy packet loss, two seeds.
        ChaosScenario{"drop_heavy_a", 5, 0.45},
        ChaosScenario{"drop_heavy_b", 6, 0.45},
        // Total data loss: every tile must fall through to the master.
        ChaosScenario{"drop_total", 7, 1.0, 0, 0, 0, -1, 1, 1},
        // Delays (sender-side sleeps; FIFO preserved).
        ChaosScenario{"delay_a", 8, 0, 0.5},
        ChaosScenario{"delay_b", 9, 0, 0.5},
        // Duplicates (mailbox suppression must keep composition single-shot).
        ChaosScenario{"duplicate_a", 10, 0, 0, 0.5},
        ChaosScenario{"duplicate_b", 11, 0, 0, 0.5},
        // Corruption (checksum must catch every flipped byte).
        ChaosScenario{"corrupt_a", 12, 0, 0, 0, 0.35},
        ChaosScenario{"corrupt_b", 13, 0, 0, 0, 0.35},
        // Node crashes before doing any work: its tiles must be recovered.
        ChaosScenario{"crash_node1_at_start", 14, 0, 0, 0, 0, 1, 1, 1},
        ChaosScenario{"crash_node2_at_start", 15, 0, 0, 0, 0, 2, 1, 1},
        ChaosScenario{"crash_node3_at_start", 16, 0, 0, 0, 0, 3, 1, 1},
        // Node crashes mid-frame (after some sends): partial work kept.
        ChaosScenario{"crash_node1_midframe", 17, 0, 0, 0, 0, 1, 4},
        ChaosScenario{"crash_node2_midframe", 18, 0, 0, 0, 0, 2, 3},
        // Everything at once.
        ChaosScenario{"mixed_a", 19, 0.15, 0.15, 0.15, 0.15},
        ChaosScenario{"mixed_b", 20, 0.15, 0.15, 0.15, 0.15},
        ChaosScenario{"mixed_heavy", 21, 0.3, 0, 0, 0.3},
        // Crash plus noise: loss and corruption while recovering.
        ChaosScenario{"crash_plus_drop", 22, 0.2, 0, 0, 0, 2, 1, 1},
        ChaosScenario{"crash_plus_corrupt", 23, 0, 0, 0, 0.2, 3, 1, 1}),
    [](const ::testing::TestParamInfo<ChaosScenario>& info) {
      return std::string(info.param.name);
    });

// mpx-level chaos: deadline collectives racing a simulated node death must
// end in success or a typed fv::Error — never a hang. (Reserved collective
// tags are fault-exempt by design, so the interesting fault is the crash.)
class MpxChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(MpxChaosTest, DeadlineCollectivesSurviveCrashOrFailTyped) {
  const int crash_op = GetParam();
  mpx::FaultSpec faults;
  faults.seed = static_cast<std::uint64_t>(crash_op);
  faults.crash_rank = 2;
  faults.crash_at_op = static_cast<std::uint64_t>(crash_op);

  const auto start = Clock::now();
  try {
    mpx::run_group(
        3,
        [&](mpx::Comm& comm) {
          std::vector<int> data{comm.rank()};
          comm.broadcast(0, data, std::chrono::milliseconds(200));
          comm.barrier(std::chrono::milliseconds(200));
          comm.gather<int>(0, data, std::chrono::milliseconds(200));
        },
        faults);
  } catch (const fv::Error&) {
    // Typed failure is an accepted outcome; a hang or a garbage decode is
    // not. (TimeoutError from a deadline, or GroupFailure when several
    // survivors time out independently.)
  }
  EXPECT_LT(Clock::now() - start, std::chrono::seconds(30));
}

// Crash points chosen to land before, between, and after the collectives
// (each rank performs a handful of mpx ops across broadcast/barrier/gather).
INSTANTIATE_TEST_SUITE_P(CrashPoints, MpxChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
