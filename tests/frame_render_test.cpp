// Pixel-level invariants of the ForestView frame renderer: synchronized
// rows align across panes in the rendered image, gap rows appear where a
// gene is unmeasured, selection marks reach the global views, and display
// preferences (colormap/contrast) change only their own pane.
#include <gtest/gtest.h>

#include "core/app.hpp"
#include "core/session.hpp"
#include "expr/synth.hpp"
#include "render/framebuffer.hpp"
#include "stats/descriptive.hpp"

namespace {

namespace co = fv::core;
namespace ex = fv::expr;
namespace rd = fv::render;

/// Two datasets over the same genome where dataset B misses gene
/// "YAL001C" (row 0 of A); values are fixed so colors are predictable.
std::vector<ex::Dataset> fixture_datasets() {
  std::vector<ex::GeneInfo> genes_a{
      {"YAL001C", "AAA1", "first"},
      {"YAL002W", "BBB2", "second"},
      {"YAL003C", "CCC3", "third"},
  };
  ex::ExpressionMatrix ma(3, 4, 2.0f);  // uniformly +2 -> saturated red
  std::vector<ex::GeneInfo> genes_b{
      {"YAL002W", "BBB2", "second"},
      {"YAL003C", "CCC3", "third"},
  };
  ex::ExpressionMatrix mb(2, 4, -2.0f);  // uniformly -2 -> saturated green
  std::vector<ex::Dataset> datasets;
  datasets.emplace_back("reds", genes_a,
                        std::vector<std::string>{"c1", "c2", "c3", "c4"},
                        std::move(ma));
  datasets.emplace_back("greens", genes_b,
                        std::vector<std::string>{"k1", "k2", "k3", "k4"},
                        std::move(mb));
  return datasets;
}

constexpr co::FrameConfig kConfig{800, 400, 4, {}};

rd::Framebuffer render(co::Session& session) {
  co::ForestViewApp app(&session);
  return app.render_desktop(kConfig);
}

std::size_t count_color_in_region(const rd::Framebuffer& fb, long x0, long x1,
                                  long y0, long y1, rd::Rgb8 color) {
  std::size_t n = 0;
  for (long y = y0; y < y1; ++y) {
    for (long x = x0; x < x1; ++x) {
      if (fb.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) ==
          color) {
        ++n;
      }
    }
  }
  return n;
}

TEST(FrameRenderTest, ZoomViewsCarryDatasetColors) {
  auto session = co::Session(fixture_datasets());
  session.select_by_names({"AAA1", "BBB2", "CCC3"});
  const auto fb = render(session);
  // Left half = pane of "reds" (+2 everywhere -> pure red cells present),
  // right half = "greens".
  EXPECT_GT(count_color_in_region(fb, 0, 398, 0, 400, rd::colors::kRed),
            200u);
  EXPECT_GT(count_color_in_region(fb, 402, 800, 0, 400, rd::colors::kGreen),
            200u);
  // And no bleed: no saturated green in the red pane.
  EXPECT_EQ(count_color_in_region(fb, 0, 398, 0, 400, rd::colors::kGreen),
            0u);
}

TEST(FrameRenderTest, UnmeasuredGeneRendersGapRowOnlyWhenSynchronized) {
  auto session = co::Session(fixture_datasets());
  session.select_by_names({"AAA1", "BBB2"});  // AAA1 missing in "greens"
  const auto synced = render(session);
  const rd::Rgb8 gap{40, 40, 48};  // kGapRow in frame.cpp
  const auto gap_pixels_synced =
      count_color_in_region(synced, 402, 800, 0, 400, gap);
  EXPECT_GT(gap_pixels_synced, 50u) << "synchronized mode must show a gap";
  session.toggle_sync();
  const auto unsynced = render(session);
  EXPECT_EQ(count_color_in_region(unsynced, 402, 800, 0, 400, gap), 0u)
      << "unsynchronized mode shows only measured rows";
}

TEST(FrameRenderTest, SelectionMarksAppearInEveryPaneGlobalView) {
  auto session = co::Session(fixture_datasets());
  const auto before = render(session);  // empty selection: no marks
  session.select_by_names({"BBB2"});
  const auto after = render(session);
  // Highlight color pixels must appear after selecting, in both panes
  // (BBB2 is measured in both datasets).
  const auto marks_left_before =
      count_color_in_region(before, 0, 398, 0, 400, rd::colors::kHighlight);
  const auto marks_left_after =
      count_color_in_region(after, 0, 398, 0, 400, rd::colors::kHighlight);
  const auto marks_right_after =
      count_color_in_region(after, 402, 800, 0, 400, rd::colors::kHighlight);
  EXPECT_GT(marks_left_after, marks_left_before);
  EXPECT_GT(marks_right_after, 0u);
}

TEST(FrameRenderTest, PerDatasetContrastOnlyAffectsOwnPane) {
  auto session = co::Session(fixture_datasets());
  session.select_by_names({"BBB2", "CCC3"});
  const auto before = render(session);
  // Raising contrast on pane 0 de-saturates its +2 values (2/8 of range),
  // leaving pane 1 untouched.
  session.prefs(0).contrast = 8.0;
  const auto after = render(session);
  const auto red_before =
      count_color_in_region(before, 0, 398, 0, 400, rd::colors::kRed);
  const auto red_after =
      count_color_in_region(after, 0, 398, 0, 400, rd::colors::kRed);
  EXPECT_LT(red_after, red_before / 2);
  // Right pane unchanged pixel for pixel.
  const auto before_right = before.crop(402, 0, 398, 400);
  const auto after_right = after.crop(402, 0, 398, 400);
  EXPECT_EQ(before_right, after_right);
}

TEST(FrameRenderTest, ColorSchemeSwitchChangesPalette) {
  auto session = co::Session(fixture_datasets());
  session.select_by_names({"BBB2", "CCC3"});
  co::DisplayPrefs prefs;
  prefs.scheme = rd::ColorScheme::kBlueYellow;
  session.set_prefs_all(prefs);
  const auto fb = render(session);
  EXPECT_EQ(count_color_in_region(fb, 0, 800, 0, 400, rd::colors::kRed), 0u);
  EXPECT_EQ(count_color_in_region(fb, 0, 800, 0, 400, rd::colors::kGreen),
            0u);
  EXPECT_GT(count_color_in_region(fb, 0, 398, 0, 400, rd::colors::kYellow),
            100u);
  EXPECT_GT(count_color_in_region(fb, 402, 800, 0, 400, rd::colors::kBlue),
            100u);
}

TEST(FrameRenderTest, ScrollShiftsSynchronizedViews) {
  // With a tall selection and a shared scroll, the first visible row after
  // scrolling must correspond to the scrolled-to gene in every pane.
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(300);
  spec.stress_datasets = 2;
  spec.nutrient_datasets = 0;
  spec.knockout_datasets = 0;
  spec.noise_datasets = 0;
  spec.measured_fraction = 1.0;
  spec.seed = 9;
  auto compendium = ex::make_compendium(spec);
  auto session = co::Session(std::move(compendium.datasets));
  session.select_region(0, 0, 200);
  const auto frame_top = render(session);
  session.scroll_to(50);
  const auto frame_scrolled = render(session);
  EXPECT_NE(frame_top, frame_scrolled);
  // Scrolling back restores the exact original image.
  session.scroll_to(0);
  EXPECT_EQ(render(session), frame_top);
}

TEST(FrameRenderTest, DeterministicRendering) {
  auto session = co::Session(fixture_datasets());
  session.select_by_names({"AAA1", "BBB2", "CCC3"});
  EXPECT_EQ(render(session), render(session));
}

}  // namespace
