// Unit and property tests for the stats module.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/multiple_testing.hpp"
#include "stats/ranking.hpp"
#include "stats/special.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

namespace st = fv::stats;

const float kMissing = st::missing_value();

TEST(DescriptiveTest, MomentsMatchHandComputation) {
  const std::vector<float> v{2.0f, 4.0f, 4.0f, 4.0f, 5.0f, 5.0f, 7.0f, 9.0f};
  const auto m = st::moments(v);
  EXPECT_EQ(m.count, 8u);
  EXPECT_NEAR(m.mean, 5.0, 1e-12);
  EXPECT_NEAR(m.variance, 32.0 / 7.0, 1e-9);
}

TEST(DescriptiveTest, MomentsSkipMissing) {
  const std::vector<float> v{1.0f, kMissing, 3.0f};
  const auto m = st::moments(v);
  EXPECT_EQ(m.count, 2u);
  EXPECT_NEAR(m.mean, 2.0, 1e-12);
}

TEST(DescriptiveTest, AllMissingGivesNanMean) {
  const std::vector<float> v{kMissing, kMissing};
  EXPECT_TRUE(std::isnan(st::mean(v)));
  EXPECT_EQ(st::present_count(v), 0u);
}

TEST(DescriptiveTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(st::median(std::vector<float>{3.0f, 1.0f, 2.0f}), 2.0);
  EXPECT_DOUBLE_EQ(st::median(std::vector<float>{4.0f, 1.0f, 2.0f, 3.0f}),
                   2.5);
}

TEST(DescriptiveTest, MedianIgnoresMissing) {
  EXPECT_DOUBLE_EQ(st::median(std::vector<float>{kMissing, 5.0f, 1.0f}), 3.0);
}

TEST(DescriptiveTest, MinMaxPresent) {
  const std::vector<float> v{kMissing, -2.0f, 7.0f};
  EXPECT_DOUBLE_EQ(st::min_present(v), -2.0);
  EXPECT_DOUBLE_EQ(st::max_present(v), 7.0);
}

TEST(CorrelationTest, PerfectPositiveAndNegative) {
  const std::vector<float> a{1, 2, 3, 4, 5};
  const std::vector<float> b{2, 4, 6, 8, 10};
  std::vector<float> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(st::pearson(a, b), 1.0, 1e-9);
  EXPECT_NEAR(st::pearson(a, c), -1.0, 1e-9);
}

TEST(CorrelationTest, ConstantProfileGivesZero) {
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> flat{3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(st::pearson(a, flat), 0.0);
}

TEST(CorrelationTest, TooFewCompletePairsGivesZero) {
  const std::vector<float> a{1, kMissing, 3, kMissing};
  const std::vector<float> b{2, 4, kMissing, 8};
  EXPECT_DOUBLE_EQ(st::pearson(a, b), 0.0);  // only one complete pair
}

TEST(CorrelationTest, PairwiseCompleteIgnoresMissing) {
  // Complete pairs (a,b): (1,2) (2,4) (3,6) (5,10) -> perfectly correlated.
  const std::vector<float> a{1, 2, 3, kMissing, 5};
  const std::vector<float> b{2, 4, 6, 100, 10};
  EXPECT_NEAR(st::pearson(a, b), 1.0, 1e-9);
}

TEST(CorrelationTest, MismatchedLengthsThrow) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{1, 2};
  EXPECT_THROW(st::pearson(a, b), fv::InvalidArgument);
}

TEST(CorrelationTest, UncenteredDiffersFromCenteredForOffsetData) {
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{101, 102, 103, 104};
  EXPECT_NEAR(st::pearson(a, b), 1.0, 1e-9);
  EXPECT_LT(st::uncentered_pearson(a, b), 1.0);
  EXPECT_GT(st::uncentered_pearson(a, b), 0.0);
}

TEST(CorrelationTest, SpearmanIsInvariantToMonotoneTransform) {
  fv::Rng rng(8);
  std::vector<float> a(40), b(40);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = std::exp(3.0f * a[i]);  // monotone function of a
  }
  EXPECT_NEAR(st::spearman(a, b), 1.0, 1e-9);
}

TEST(CorrelationTest, ZNormalizeGivesZeroMeanUnitVariance) {
  std::vector<float> v{1, 2, 3, 4, 5, 6};
  const std::size_t n = st::z_normalize(v);
  EXPECT_EQ(n, 6u);
  const auto m = st::moments(v);
  EXPECT_NEAR(m.mean, 0.0, 1e-6);
  EXPECT_NEAR(m.variance, 1.0, 1e-5);
}

TEST(CorrelationTest, ZNormalizeConstantBecomesZero) {
  std::vector<float> v{4, 4, 4};
  st::z_normalize(v);
  for (float x : v) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(CorrelationTest, ZdotMatchesPearsonOnCompleteData) {
  fv::Rng rng(12);
  std::vector<float> a(50), b(50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = static_cast<float>(0.7 * a[i] + 0.3 * rng.normal());
  }
  const auto pa = st::ZProfile::from(a);
  const auto pb = st::ZProfile::from(b);
  EXPECT_NEAR(st::zdot(pa, pb), st::pearson(a, b), 1e-6);
}

// Property sweep: correlation symmetry, bounds and affine invariance on
// random vectors of several lengths.
class CorrelationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CorrelationPropertyTest, SymmetricBoundedAffineInvariant) {
  fv::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + static_cast<std::size_t>(GetParam()) % 60;
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = static_cast<float>(rng.normal());
  }
  const double r_ab = st::pearson(a, b);
  const double r_ba = st::pearson(b, a);
  EXPECT_NEAR(r_ab, r_ba, 1e-12);
  EXPECT_GE(r_ab, -1.0);
  EXPECT_LE(r_ab, 1.0);
  // Positive affine transform of one side leaves Pearson unchanged.
  std::vector<float> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = 2.5f * a[i] + 7.0f;
  EXPECT_NEAR(st::pearson(scaled, b), r_ab, 1e-5);
  // Self-correlation of a non-constant vector is 1.
  EXPECT_NEAR(st::pearson(a, a), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, CorrelationPropertyTest,
                         ::testing::Range(1, 25));

TEST(RankingTest, ArgsortAscendingStable) {
  const std::vector<float> v{3.0f, 1.0f, 2.0f, 1.0f};
  const auto order = st::argsort(v);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);  // first 1.0 (stable)
  EXPECT_EQ(order[1], 3u);  // second 1.0
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
}

TEST(RankingTest, MidranksAverageTies) {
  const std::vector<float> v{10.0f, 20.0f, 20.0f, 30.0f};
  const auto ranks = st::midranks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(SpecialTest, LogGammaMatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(st::log_gamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(st::log_gamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(st::log_gamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(SpecialTest, LogGammaHalfInteger) {
  EXPECT_NEAR(st::log_gamma(0.5), std::log(std::sqrt(M_PI)), 1e-9);
}

TEST(SpecialTest, LogChooseMatchesSmallCases) {
  EXPECT_NEAR(st::log_choose(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(st::log_choose(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(st::log_choose(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(st::log_choose(52, 5), std::log(2598960.0), 1e-7);
}

TEST(SpecialTest, HypergeometricPmfMatchesHandCase) {
  // Urn: N=10, K=4 annotated; draw n=3. P[X=2] = C(4,2)C(6,1)/C(10,3) = 36/120.
  EXPECT_NEAR(st::hypergeometric_pmf(2, 10, 4, 3), 0.3, 1e-12);
}

TEST(SpecialTest, HypergeometricPmfSumsToOne) {
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 5; ++k) {
    total += st::hypergeometric_pmf(k, 20, 5, 8);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(SpecialTest, UpperAndLowerTailsAreComplementary) {
  // P[X >= k] + P[X <= k-1] = 1.
  const double upper = st::hypergeometric_upper_tail(3, 30, 10, 12);
  const double lower = st::hypergeometric_lower_tail(2, 30, 10, 12);
  EXPECT_NEAR(upper + lower, 1.0, 1e-10);
}

TEST(SpecialTest, UpperTailAtZeroIsOne) {
  EXPECT_DOUBLE_EQ(st::hypergeometric_upper_tail(0, 100, 10, 5), 1.0);
}

TEST(SpecialTest, UpperTailBeyondSupportIsZero) {
  EXPECT_DOUBLE_EQ(st::hypergeometric_upper_tail(6, 100, 5, 10), 0.0);
}

TEST(SpecialTest, FisherEnrichmentMatchesHypergeometric) {
  const double fisher = st::fisher_exact_enrichment(4, 10, 20, 100);
  const double hyper = st::hypergeometric_upper_tail(4, 100, 20, 10);
  EXPECT_DOUBLE_EQ(fisher, hyper);
}

TEST(SpecialTest, InvalidArgumentsThrow) {
  EXPECT_THROW(st::hypergeometric_pmf(0, 10, 11, 5), fv::InvalidArgument);
  EXPECT_THROW(st::hypergeometric_pmf(0, 10, 5, 11), fv::InvalidArgument);
  EXPECT_THROW(st::log_choose(3, 4), fv::InvalidArgument);
  EXPECT_THROW(st::log_gamma(0.0), fv::InvalidArgument);
}

TEST(MultipleTestingTest, BonferroniScalesAndClamps) {
  const std::vector<double> p{0.01, 0.2, 0.5};
  const auto adjusted = st::bonferroni(p);
  EXPECT_NEAR(adjusted[0], 0.03, 1e-12);
  EXPECT_NEAR(adjusted[1], 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(adjusted[2], 1.0);
}

TEST(MultipleTestingTest, BenjaminiHochbergKnownExample) {
  // Classic example: sorted p = .01, .02, .03, .04 with m = 4.
  const std::vector<double> p{0.04, 0.01, 0.03, 0.02};
  const auto q = st::benjamini_hochberg(p);
  EXPECT_NEAR(q[1], 0.04, 1e-12);  // 0.01 * 4 / 1
  EXPECT_NEAR(q[3], 0.04, 1e-12);  // 0.02 * 4 / 2
  EXPECT_NEAR(q[2], 0.04, 1e-12);  // 0.03 * 4 / 3 = .04
  EXPECT_NEAR(q[0], 0.04, 1e-12);  // 0.04 * 4 / 4
}

TEST(MultipleTestingTest, BhNeverBelowRawP) {
  fv::Rng rng(31);
  std::vector<double> p(50);
  for (double& x : p) x = rng.uniform();
  const auto q = st::benjamini_hochberg(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(q[i] + 1e-15, p[i]);
    EXPECT_LE(q[i], 1.0);
  }
}

TEST(MultipleTestingTest, BhPreservesOrderOfEvidence) {
  fv::Rng rng(32);
  std::vector<double> p(40);
  for (double& x : p) x = rng.uniform();
  const auto q = st::benjamini_hochberg(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (p[i] < p[j]) {
        EXPECT_LE(q[i], q[j] + 1e-15);
      }
    }
  }
}

TEST(MultipleTestingTest, EmptyInputsAreFine) {
  EXPECT_TRUE(st::bonferroni({}).empty());
  EXPECT_TRUE(st::benjamini_hochberg({}).empty());
}

TEST(MultipleTestingTest, OutOfRangePValuesThrow) {
  const std::vector<double> bad{0.5, 1.5};
  EXPECT_THROW(st::bonferroni(bad), fv::InvalidArgument);
  EXPECT_THROW(st::benjamini_hochberg(bad), fv::InvalidArgument);
}

}  // namespace
