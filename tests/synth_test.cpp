// Tests for the synthetic compendium generator: determinism, planted module
// structure, and the cross-dataset signals the paper's studies rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "expr/synth.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace {

namespace ex = fv::expr;
namespace st = fv::stats;

ex::SynthGenome test_genome(std::size_t genes = 600) {
  return ex::make_genome(ex::GenomeSpec::yeast_like(genes), 7);
}

TEST(SynthGenomeTest, GeneNamesAreUniqueAndWellFormed) {
  const auto genome = test_genome();
  std::set<std::string> names;
  for (const auto& gene : genome.genes()) {
    EXPECT_EQ(gene.systematic_name.front(), 'Y');
    EXPECT_EQ(gene.systematic_name.size(), 7u);
    names.insert(gene.systematic_name);
  }
  EXPECT_EQ(names.size(), genome.gene_count());
}

TEST(SynthGenomeTest, ModuleSizesMatchFractions) {
  const auto genome = test_genome(1000);
  const auto esr = genome.module_members("ESR_UP");
  EXPECT_NEAR(static_cast<double>(esr.size()), 50.0, 1.0);  // 5% of 1000
  const auto rp = genome.module_members("RP");
  EXPECT_NEAR(static_cast<double>(rp.size()), 40.0, 1.0);
}

TEST(SynthGenomeTest, ModuleMembersCarryPrefixAndDescription) {
  const auto genome = test_genome();
  const auto rp = genome.module_members("RP");
  ASSERT_FALSE(rp.empty());
  for (std::size_t g : rp) {
    EXPECT_EQ(genome.gene(g).common_name.rfind("RPL", 0), 0u);
    EXPECT_NE(genome.gene(g).description.find("ribosomal"),
              std::string::npos);
  }
}

TEST(SynthGenomeTest, DeterministicForSameSeed) {
  const auto a = ex::make_genome(ex::GenomeSpec::yeast_like(300), 5);
  const auto b = ex::make_genome(ex::GenomeSpec::yeast_like(300), 5);
  for (std::size_t g = 0; g < a.gene_count(); ++g) {
    EXPECT_EQ(a.gene(g).common_name, b.gene(g).common_name);
    EXPECT_EQ(a.module_of(g), b.module_of(g));
    EXPECT_DOUBLE_EQ(a.amplitude(g), b.amplitude(g));
  }
}

TEST(SynthGenomeTest, UnknownModuleLookupsAreEmpty) {
  const auto genome = test_genome();
  EXPECT_FALSE(genome.module_index("NOPE").has_value());
  EXPECT_TRUE(genome.module_members("NOPE").empty());
}

TEST(SynthGenomeTest, OversubscribedModulesRejected) {
  ex::GenomeSpec spec = ex::GenomeSpec::yeast_like(100);
  spec.modules.push_back({"HUGE", 0.9, "X", "too big", 1.0});
  EXPECT_THROW(ex::make_genome(spec, 1), fv::InvalidArgument);
}

TEST(StressDatasetTest, ShapeAndNames) {
  const auto genome = test_genome();
  ex::StressDatasetSpec spec;
  spec.time_points = 5;
  const auto ds = ex::make_stress_dataset(genome, spec, 11);
  EXPECT_EQ(ds.condition_count(), spec.stresses.size() * 5);
  EXPECT_EQ(ds.gene_count(), genome.gene_count());
  EXPECT_EQ(ds.condition(0).rfind("heat_", 0), 0u);
}

TEST(StressDatasetTest, EsrGenesRiseRpGenesFall) {
  const auto genome = test_genome(800);
  ex::StressDatasetSpec spec;
  spec.noise_sd = 0.1;
  spec.missing_rate = 0.0;
  const auto ds = ex::make_stress_dataset(genome, spec, 13);
  // Late heat time point: strong ESR induction, RP repression.
  const std::size_t late = spec.time_points - 1;
  double esr_mean = 0.0, rp_mean = 0.0;
  const auto esr = genome.module_members("ESR_UP");
  const auto rp = genome.module_members("RP");
  for (std::size_t g : esr) {
    esr_mean += ds.values().at(*ds.row_of(genome.gene(g).systematic_name),
                               late);
  }
  for (std::size_t g : rp) {
    rp_mean += ds.values().at(*ds.row_of(genome.gene(g).systematic_name),
                              late);
  }
  esr_mean /= static_cast<double>(esr.size());
  rp_mean /= static_cast<double>(rp.size());
  EXPECT_GT(esr_mean, 1.0);
  EXPECT_LT(rp_mean, -1.0);
}

TEST(StressDatasetTest, ModuleGenesAreMutuallyCorrelated) {
  const auto genome = test_genome(800);
  ex::StressDatasetSpec spec;
  spec.noise_sd = 0.25;
  const auto ds = ex::make_stress_dataset(genome, spec, 17);
  const auto esr = genome.module_members("ESR_UP");
  ASSERT_GE(esr.size(), 4u);
  double total = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      const auto ri = ds.row_of(genome.gene(esr[i]).systematic_name);
      const auto rj = ds.row_of(genome.gene(esr[j]).systematic_name);
      total += st::pearson(ds.profile(*ri), ds.profile(*rj));
      ++pairs;
    }
  }
  EXPECT_GT(total / pairs, 0.6);
}

TEST(StressDatasetTest, HeatSpecificModuleRespondsMostToHeat) {
  const auto genome = test_genome(800);
  ex::StressDatasetSpec spec;
  spec.noise_sd = 0.05;
  spec.missing_rate = 0.0;
  const auto ds = ex::make_stress_dataset(genome, spec, 19);
  const auto hsp = genome.module_members("HSP");
  ASSERT_FALSE(hsp.empty());
  const std::size_t points = spec.time_points;
  double heat_mean = 0.0, osmotic_mean = 0.0;
  for (std::size_t g : hsp) {
    const auto row = *ds.row_of(genome.gene(g).systematic_name);
    heat_mean += ds.values().at(row, points - 1);          // heat, late
    osmotic_mean += ds.values().at(row, 3 * points - 1);   // osmotic, late
  }
  EXPECT_GT(heat_mean, 3.0 * std::max(osmotic_mean, 1e-9));
}

TEST(StressDatasetTest, MissingRateApproximatelyRespected) {
  const auto genome = test_genome(400);
  ex::StressDatasetSpec spec;
  spec.missing_rate = 0.10;
  const auto ds = ex::make_stress_dataset(genome, spec, 23);
  EXPECT_NEAR(ds.values().missing_fraction(), 0.10, 0.02);
}

TEST(StressDatasetTest, MeasuredFractionSubsamplesRows) {
  const auto genome = test_genome(500);
  ex::StressDatasetSpec spec;
  spec.measured_fraction = 0.6;
  const auto ds = ex::make_stress_dataset(genome, spec, 29);
  EXPECT_EQ(ds.gene_count(), 300u);
}

TEST(NutrientDatasetTest, SlowGrowthCarriesStressSignature) {
  const auto genome = test_genome(800);
  ex::NutrientDatasetSpec spec;
  spec.noise_sd = 0.1;
  spec.missing_rate = 0.0;
  const auto ds = ex::make_nutrient_dataset(genome, spec, 31);
  // Column 0 is the slowest growth rate for the first nutrient; the last
  // rate column of that nutrient is fastest.
  const auto esr = genome.module_members("ESR_UP");
  double slow_mean = 0.0, fast_mean = 0.0;
  for (std::size_t g : esr) {
    const auto row = *ds.row_of(genome.gene(g).systematic_name);
    slow_mean += ds.values().at(row, 0);
    fast_mean += ds.values().at(row, spec.growth_rates.size() - 1);
  }
  slow_mean /= static_cast<double>(esr.size());
  fast_mean /= static_cast<double>(esr.size());
  EXPECT_GT(slow_mean, 0.8);
  EXPECT_NEAR(fast_mean, 0.0, 0.3);
}

TEST(KnockoutDatasetTest, TruthArraysMatchConditions) {
  const auto genome = test_genome(600);
  ex::KnockoutDatasetSpec spec;
  spec.knockouts = 60;
  const auto result = ex::make_knockout_dataset(genome, spec, 37);
  EXPECT_EQ(result.dataset.condition_count(), 60u);
  EXPECT_EQ(result.truth.targeted_module.size(), 60u);
  EXPECT_EQ(result.truth.slow_growth.size(), 60u);
  // Regulator conditions carry module names in their labels.
  for (std::size_t c = 0; c < 60; ++c) {
    if (result.truth.targeted_module[c] >= 0) {
      EXPECT_NE(result.dataset.condition(c).find("_reg"), std::string::npos);
      EXPECT_NE(result.truth.regulation_sign[c], 0);
    }
  }
}

TEST(KnockoutDatasetTest, RegulatorKnockoutMovesItsModule) {
  const auto genome = test_genome(600);
  ex::KnockoutDatasetSpec spec;
  spec.knockouts = 60;
  spec.noise_sd = 0.1;
  spec.slow_growth_fraction = 0.0;  // isolate the regulator effect
  const auto result = ex::make_knockout_dataset(genome, spec, 41);
  const auto& truth = result.truth;
  for (std::size_t c = 0; c < 60; ++c) {
    const int m = truth.targeted_module[c];
    if (m < 0) continue;
    const auto members =
        genome.module_members(genome.module_names()[static_cast<std::size_t>(m)]);
    double mean_response = 0.0;
    std::size_t counted = 0;
    for (std::size_t g : members) {
      const auto row =
          result.dataset.row_of(genome.gene(g).systematic_name);
      if (!row.has_value()) continue;
      const float v = result.dataset.values().at(*row, c);
      if (!st::is_missing(v)) {
        mean_response += v;
        ++counted;
      }
    }
    ASSERT_GT(counted, 0u);
    mean_response /= static_cast<double>(counted);
    if (truth.regulation_sign[c] > 0) {
      EXPECT_GT(mean_response, 0.5) << "condition " << c;
    } else {
      EXPECT_LT(mean_response, -0.5) << "condition " << c;
    }
  }
}

TEST(CompendiumTest, BuildsRequestedDatasets) {
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(400);
  spec.stress_datasets = 2;
  spec.nutrient_datasets = 1;
  spec.knockout_datasets = 1;
  spec.noise_datasets = 1;
  const auto compendium = ex::make_compendium(spec);
  EXPECT_EQ(compendium.datasets.size(), 5u);
  EXPECT_EQ(compendium.knockout_truth.size(), 1u);
  EXPECT_EQ(compendium.datasets[compendium.knockout_truth[0].first].name(),
            "knockout_1");
}

TEST(CompendiumTest, DatasetsSubsampleAndShuffleGenes) {
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(400);
  spec.measured_fraction = 0.8;
  const auto compendium = ex::make_compendium(spec);
  for (const auto& ds : compendium.datasets) {
    EXPECT_EQ(ds.gene_count(), 320u);
  }
  // Gene orders should differ between datasets (shuffled subsets).
  const auto& a = compendium.datasets[0];
  const auto& b = compendium.datasets[1];
  int same_position = 0;
  const std::size_t n = std::min(a.gene_count(), b.gene_count());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.gene(i).systematic_name == b.gene(i).systematic_name) {
      ++same_position;
    }
  }
  EXPECT_LT(same_position, static_cast<int>(n / 4));
}

TEST(CompendiumTest, DeterministicForSeed) {
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(300);
  spec.seed = 123;
  const auto a = ex::make_compendium(spec);
  const auto b = ex::make_compendium(spec);
  ASSERT_EQ(a.datasets.size(), b.datasets.size());
  for (std::size_t d = 0; d < a.datasets.size(); ++d) {
    ASSERT_EQ(a.datasets[d].gene_count(), b.datasets[d].gene_count());
    for (std::size_t r = 0; r < a.datasets[d].gene_count(); ++r) {
      EXPECT_EQ(a.datasets[d].gene(r).systematic_name,
                b.datasets[d].gene(r).systematic_name);
    }
    const auto va = a.datasets[d].values().data();
    const auto vb = b.datasets[d].values().data();
    for (std::size_t i = 0; i < va.size(); ++i) {
      if (st::is_missing(va[i])) {
        EXPECT_TRUE(st::is_missing(vb[i]));
      } else {
        EXPECT_FLOAT_EQ(va[i], vb[i]);
      }
    }
  }
}

}  // namespace
