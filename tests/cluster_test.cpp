// Tests for hierarchical clustering, distances, tree cuts and k-means.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/distance.hpp"
#include "cluster/hclust.hpp"
#include "cluster/kmeans.hpp"
#include "expr/synth.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

namespace cl = fv::cluster;
namespace ex = fv::expr;

ex::ExpressionMatrix two_blob_matrix(std::size_t per_blob, std::size_t cols,
                                     std::uint64_t seed) {
  // Rows 0..per_blob-1 follow +pattern, the rest -pattern, plus small noise.
  fv::Rng rng(seed);
  ex::ExpressionMatrix m(2 * per_blob, cols);
  for (std::size_t r = 0; r < 2 * per_blob; ++r) {
    const double sign = r < per_blob ? 1.0 : -1.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double pattern = std::sin(0.7 * static_cast<double>(c + 1));
      m.set(r, c,
            static_cast<float>(sign * pattern + rng.normal(0.0, 0.05)));
    }
  }
  return m;
}

TEST(DistanceTest, PearsonDistanceZeroForIdenticalProfiles) {
  const std::vector<float> a{1, 2, 3, 4, 5};
  EXPECT_NEAR(cl::profile_distance(a, a, cl::Metric::kPearson), 0.0, 1e-9);
}

TEST(DistanceTest, PearsonDistanceTwoForAnticorrelated) {
  const std::vector<float> a{1, 2, 3, 4, 5};
  const std::vector<float> b{5, 4, 3, 2, 1};
  EXPECT_NEAR(cl::profile_distance(a, b, cl::Metric::kPearson), 2.0, 1e-9);
}

TEST(DistanceTest, EuclideanMatchesHandComputation) {
  const std::vector<float> a{0, 0, 0};
  const std::vector<float> b{1, 2, 2};
  EXPECT_NEAR(cl::profile_distance(a, b, cl::Metric::kEuclidean), 3.0, 1e-9);
}

TEST(DistanceTest, EuclideanScalesForMissingCoverage) {
  const float kMissing = fv::stats::missing_value();
  const std::vector<float> a{0, 0, kMissing, 0};
  const std::vector<float> b{3, 4, 5, kMissing};
  // Present pairs: (0,3), (0,4) -> sum 25 over 2 of 4 coords -> 25*4/2 = 50.
  EXPECT_NEAR(cl::profile_distance(a, b, cl::Metric::kEuclidean),
              std::sqrt(50.0), 1e-9);
}

TEST(DistanceTest, MatrixIsSymmetricWithZeroDiagonal) {
  const auto m = two_blob_matrix(6, 10, 3);
  const auto d = cl::row_distances(m, cl::Metric::kPearson);
  ASSERT_EQ(d.size(), 12u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_FLOAT_EQ(d.at(i, i), 0.0f);
    for (std::size_t j = 0; j < d.size(); ++j) {
      EXPECT_FLOAT_EQ(d.at(i, j), d.at(j, i));
    }
  }
}

TEST(DistanceTest, SquaredDistancesAreExactSquares) {
  // The squared condensed writer must emit exactly the float square of the
  // Euclidean writer, cell for cell — the Lance–Williams input contract for
  // Ward/centroid/median.
  const auto m = two_blob_matrix(5, 12, 7);
  fv::par::ThreadPool pool(2);
  const auto plain = cl::row_distances(m, cl::Metric::kEuclidean, pool);
  const auto squared = cl::row_squared_distances(m, pool);
  ASSERT_EQ(squared.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    for (std::size_t j = i + 1; j < plain.size(); ++j) {
      EXPECT_FLOAT_EQ(squared.at(i, j), plain.at(i, j) * plain.at(i, j));
    }
  }
  const auto squared_cols = cl::column_squared_distances(m, pool);
  const auto plain_cols = cl::column_distances(m, cl::Metric::kEuclidean, pool);
  ASSERT_EQ(squared_cols.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i + 1; j < 12; ++j) {
      EXPECT_FLOAT_EQ(squared_cols.at(i, j),
                      plain_cols.at(i, j) * plain_cols.at(i, j));
    }
  }
}

TEST(ClusterTest, WardClusterGenesBuildsValidTree) {
  const auto m = two_blob_matrix(6, 16, 19);
  fv::par::ThreadPool pool(2);
  auto merges = cl::agglomerate(cl::row_squared_distances(m, pool),
                                cl::Linkage::kWard);
  const auto tree = cl::merges_to_tree(merges, m.rows(),
                                       cl::negated_similarity);
  EXPECT_TRUE(tree.is_complete());
  // Ward separates the two planted blobs at k = 2.
  const auto clusters = cl::cut_tree_k(tree, 2);
  ASSERT_EQ(clusters.size(), 2u);
  for (const auto& cluster : clusters) {
    EXPECT_EQ(cluster.size(), 6u);
    const bool first_blob = cluster.front() < 6;
    for (const std::size_t leaf : cluster) {
      EXPECT_EQ(leaf < 6, first_blob);
    }
  }
}

TEST(ClusterTest, SquaredLinkagesRejectCorrelationMetrics) {
  auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(40), 23);
  ex::StressDatasetSpec spec;
  spec.missing_rate = 0.0;
  auto ds = ex::make_stress_dataset(genome, spec, 9);
  fv::par::ThreadPool pool(2);
  EXPECT_THROW(cl::cluster_genes(ds, cl::Metric::kPearson,
                                 cl::Linkage::kWard, pool),
               fv::InvalidArgument);
  // With the Euclidean metric all three squared linkages attach trees.
  for (const auto linkage : {cl::Linkage::kWard, cl::Linkage::kCentroid,
                             cl::Linkage::kMedian}) {
    cl::cluster_genes(ds, cl::Metric::kEuclidean, linkage, pool);
    ASSERT_TRUE(ds.gene_tree().has_value());
    EXPECT_TRUE(ds.gene_tree()->is_complete());
    EXPECT_EQ(ds.gene_tree()->leaf_count(), ds.gene_count());
  }
}

TEST(DistanceTest, ColumnDistancesMatchManualColumns) {
  const auto m = two_blob_matrix(4, 6, 5);
  fv::par::ThreadPool pool(2);
  const auto d = cl::column_distances(m, cl::Metric::kEuclidean, pool);
  ASSERT_EQ(d.size(), 6u);
  const auto c0 = m.column(0);
  const auto c3 = m.column(3);
  EXPECT_NEAR(d.at(0, 3),
              cl::profile_distance(c0, c3, cl::Metric::kEuclidean), 1e-5);
}

TEST(HclustTest, MergesAreMonotoneNonDecreasing) {
  const auto m = two_blob_matrix(8, 12, 7);
  for (const auto linkage :
       {cl::Linkage::kSingle, cl::Linkage::kComplete, cl::Linkage::kAverage}) {
    const auto merges = cl::agglomerate(
        cl::row_distances(m, cl::Metric::kPearson), linkage);
    ASSERT_EQ(merges.size(), m.rows() - 1);
    for (std::size_t i = 1; i < merges.size(); ++i) {
      EXPECT_GE(merges[i].distance + 1e-9, merges[i - 1].distance);
    }
  }
}

TEST(HclustTest, RecoversPlantedBlobsAtTopSplit) {
  const std::size_t per_blob = 10;
  const auto m = two_blob_matrix(per_blob, 14, 9);
  const auto merges = cl::agglomerate(
      cl::row_distances(m, cl::Metric::kPearson), cl::Linkage::kAverage);
  const auto tree = cl::merges_to_tree(merges, m.rows(),
                                       cl::correlation_similarity);
  const auto clusters = cl::cut_tree_k(tree, 2);
  ASSERT_EQ(clusters.size(), 2u);
  // Each cluster must be exactly one blob.
  for (const auto& cluster : clusters) {
    ASSERT_EQ(cluster.size(), per_blob);
    const bool first_blob = cluster[0] < per_blob;
    for (std::size_t leaf : cluster) {
      EXPECT_EQ(leaf < per_blob, first_blob);
    }
  }
}

TEST(HclustTest, SingleElementNeedsNoMerges) {
  cl::DistanceMatrix d(1);
  const auto merges = cl::agglomerate(std::move(d), cl::Linkage::kAverage);
  EXPECT_TRUE(merges.empty());
}

TEST(HclustTest, TreeFromMergesIsComplete) {
  const auto m = two_blob_matrix(5, 8, 11);
  const auto merges = cl::agglomerate(
      cl::row_distances(m, cl::Metric::kEuclidean), cl::Linkage::kComplete);
  const auto tree =
      cl::merges_to_tree(merges, m.rows(), cl::negated_similarity);
  EXPECT_TRUE(tree.is_complete());
  EXPECT_EQ(tree.leaf_count(), m.rows());
}

TEST(HclustTest, WrongMergeCountThrows) {
  std::vector<cl::Merge> merges;  // empty but leaf_count 3
  EXPECT_THROW(cl::merges_to_tree(merges, 3, cl::correlation_similarity),
               fv::InvalidArgument);
}

TEST(HclustTest, ClusterGenesAttachesTree) {
  auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(120), 3);
  ex::StressDatasetSpec spec;
  spec.missing_rate = 0.0;
  auto ds = ex::make_stress_dataset(genome, spec, 5);
  fv::par::ThreadPool pool(2);
  cl::cluster_genes(ds, cl::Metric::kPearson, cl::Linkage::kAverage, pool);
  ASSERT_TRUE(ds.gene_tree().has_value());
  EXPECT_EQ(ds.gene_tree()->leaf_count(), ds.gene_count());
  // Display order is a permutation of all rows.
  auto order = ds.display_order();
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(HclustTest, ClusterArraysAttachesTree) {
  auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(80), 3);
  ex::StressDatasetSpec spec;
  spec.missing_rate = 0.0;
  auto ds = ex::make_stress_dataset(genome, spec, 5);
  fv::par::ThreadPool pool(2);
  cl::cluster_arrays(ds, cl::Metric::kEuclidean, cl::Linkage::kAverage, pool);
  ASSERT_TRUE(ds.array_tree().has_value());
  EXPECT_EQ(ds.array_tree()->leaf_count(), ds.condition_count());
}

TEST(TreeCutTest, SimilarityCutPartitionsLeaves) {
  const auto m = two_blob_matrix(6, 10, 13);
  const auto merges = cl::agglomerate(
      cl::row_distances(m, cl::Metric::kPearson), cl::Linkage::kAverage);
  const auto tree =
      cl::merges_to_tree(merges, m.rows(), cl::correlation_similarity);
  for (const double threshold : {-1.0, 0.0, 0.5, 0.9, 1.1}) {
    const auto clusters = cl::cut_tree_at_similarity(tree, threshold);
    std::set<std::size_t> seen;
    for (const auto& cluster : clusters) {
      for (std::size_t leaf : cluster) {
        EXPECT_TRUE(seen.insert(leaf).second) << "duplicate leaf";
      }
    }
    EXPECT_EQ(seen.size(), m.rows());
  }
}

TEST(TreeCutTest, ThresholdAboveAllMergesGivesSingletons) {
  const auto m = two_blob_matrix(4, 8, 15);
  const auto merges = cl::agglomerate(
      cl::row_distances(m, cl::Metric::kPearson), cl::Linkage::kAverage);
  const auto tree =
      cl::merges_to_tree(merges, m.rows(), cl::correlation_similarity);
  const auto clusters = cl::cut_tree_at_similarity(tree, 2.0);
  EXPECT_EQ(clusters.size(), m.rows());
}

TEST(TreeCutTest, CutKExtremes) {
  const auto m = two_blob_matrix(5, 8, 17);
  const auto merges = cl::agglomerate(
      cl::row_distances(m, cl::Metric::kPearson), cl::Linkage::kAverage);
  const auto tree =
      cl::merges_to_tree(merges, m.rows(), cl::correlation_similarity);
  EXPECT_EQ(cl::cut_tree_k(tree, 1).size(), 1u);
  EXPECT_EQ(cl::cut_tree_k(tree, m.rows()).size(), m.rows());
  EXPECT_THROW(cl::cut_tree_k(tree, 0), fv::InvalidArgument);
  EXPECT_THROW(cl::cut_tree_k(tree, m.rows() + 1), fv::InvalidArgument);
}

TEST(TreeCutTest, SingleLeafTreeCuts) {
  // A one-gene dataset has a leaf-only tree: no merges, but both cut
  // operations must still return the one-singleton partition.
  const ex::HierTree tree(1);
  const auto by_sim = cl::cut_tree_at_similarity(tree, 0.5);
  ASSERT_EQ(by_sim.size(), 1u);
  EXPECT_EQ(by_sim[0], std::vector<std::size_t>{0});
  const auto by_k = cl::cut_tree_k(tree, 1);
  ASSERT_EQ(by_k.size(), 1u);
  EXPECT_EQ(by_k[0], std::vector<std::size_t>{0});
  EXPECT_THROW(cl::cut_tree_k(tree, 2), fv::InvalidArgument);
}

TEST(TreeCutTest, TiedMergeHeightsCutDeterministically) {
  // Two pairs merge at the same similarity (0.8), the root far below. Cuts
  // exactly at the tie and inside the tie band must be deterministic.
  std::vector<cl::Merge> merges{
      {0, 1, 0.2}, {2, 3, 0.2}, {4, 5, 0.7}};  // distances; sim = 1 - d
  const auto tree = cl::merges_to_tree(merges, 4, cl::correlation_similarity);
  // Threshold equal to the tied similarity: both pairs survive (>= is
  // inclusive), root does not.
  const auto at_tie = cl::cut_tree_at_similarity(tree, 0.8);
  ASSERT_EQ(at_tie.size(), 2u);
  for (const auto& cluster : at_tie) EXPECT_EQ(cluster.size(), 2u);
  // Just above the tie: everything dissolves to singletons.
  EXPECT_EQ(cl::cut_tree_at_similarity(tree, 0.8 + 1e-9).size(), 4u);
  // k = 2 keeps both tied pairs.
  const auto two = cl::cut_tree_k(tree, 2);
  ASSERT_EQ(two.size(), 2u);
  for (const auto& cluster : two) EXPECT_EQ(cluster.size(), 2u);
  // k = 3 must undo exactly one of the tied merges — deterministically the
  // higher node id (the later-emitted pair) — leaving a 2-1-1 partition.
  const auto three = cl::cut_tree_k(tree, 3);
  ASSERT_EQ(three.size(), 3u);
  std::multiset<std::size_t> sizes;
  for (const auto& cluster : three) sizes.insert(cluster.size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 1, 2}));
  // Deterministic: repeated cuts agree.
  EXPECT_EQ(three, cl::cut_tree_k(tree, 3));
}

TEST(TreeCutTest, AllMergesTiedStillPartition) {
  // Every merge at the same height: cut_tree_k must still produce exactly k
  // clusters for every k (id order breaks the ties).
  const auto n = std::size_t{6};
  std::vector<cl::Merge> merges;
  // Left comb: (0,1), (6,2), (7,3), ... all at distance 0.5.
  merges.push_back({0, 1, 0.5});
  for (std::size_t i = 2; i < n; ++i) {
    merges.push_back({static_cast<int>(n + i - 2), static_cast<int>(i), 0.5});
  }
  const auto tree = cl::merges_to_tree(merges, n, cl::correlation_similarity);
  for (std::size_t k = 1; k <= n; ++k) {
    const auto clusters = cl::cut_tree_k(tree, k);
    EXPECT_EQ(clusters.size(), k);
    std::set<std::size_t> seen;
    for (const auto& cluster : clusters) {
      for (const std::size_t leaf : cluster) seen.insert(leaf);
    }
    EXPECT_EQ(seen.size(), n);
  }
}

// Property sweep: cut_tree_k returns exactly k clusters forming a partition.
class CutKPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CutKPropertyTest, PartitionWithExactlyK) {
  const auto m = two_blob_matrix(8, 10, 21);
  const auto merges = cl::agglomerate(
      cl::row_distances(m, cl::Metric::kPearson), cl::Linkage::kComplete);
  const auto tree =
      cl::merges_to_tree(merges, m.rows(), cl::correlation_similarity);
  const auto k = static_cast<std::size_t>(GetParam());
  const auto clusters = cl::cut_tree_k(tree, k);
  EXPECT_EQ(clusters.size(), k);
  std::set<std::size_t> seen;
  for (const auto& cluster : clusters) {
    for (std::size_t leaf : cluster) seen.insert(leaf);
  }
  EXPECT_EQ(seen.size(), m.rows());
}

INSTANTIATE_TEST_SUITE_P(KSweep, CutKPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(KMeansTest, SeparatesPlantedBlobs) {
  const auto m = two_blob_matrix(12, 10, 23);
  fv::Rng rng(1);
  const auto result = cl::kmeans_rows(m, 2, rng);
  ASSERT_EQ(result.assignment.size(), m.rows());
  // All rows of one blob share a label, and the blobs differ.
  for (std::size_t r = 1; r < 12; ++r) {
    EXPECT_EQ(result.assignment[r], result.assignment[0]);
  }
  for (std::size_t r = 13; r < 24; ++r) {
    EXPECT_EQ(result.assignment[r], result.assignment[12]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[12]);
}

TEST(KMeansTest, KEqualsRowsGivesZeroInertia) {
  const auto m = two_blob_matrix(3, 6, 25);
  fv::Rng rng(2);
  const auto result = cl::kmeans_rows(m, m.rows(), rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-6);
}

TEST(KMeansTest, InvalidKThrows) {
  const auto m = two_blob_matrix(3, 6, 27);
  fv::Rng rng(3);
  EXPECT_THROW(cl::kmeans_rows(m, 0, rng), fv::InvalidArgument);
  EXPECT_THROW(cl::kmeans_rows(m, m.rows() + 1, rng), fv::InvalidArgument);
}

}  // namespace
