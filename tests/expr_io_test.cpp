// Round-trip and failure-injection tests for PCL/CDT/GTR/ATR/GMT parsers.
#include <gtest/gtest.h>

#include <cmath>

#include "expr/cdt_io.hpp"
#include "expr/gmt_io.hpp"
#include "expr/pcl_io.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace {

using fv::expr::CdtBundle;
using fv::expr::Dataset;
using fv::expr::ExpressionMatrix;
using fv::expr::GeneInfo;
using fv::expr::GeneSet;
using fv::expr::HierTree;

Dataset sample_dataset() {
  std::vector<GeneInfo> genes{
      {"YAL001C", "TFC3", "transcription factor TFIIIC subunit"},
      {"YBR072W", "HSP26", "small heat shock protein"},
      {"YGR192C", "TDH3", ""},
      {"YDL229W", "", "uncharacterized"},
  };
  std::vector<std::string> conditions{"heat_5min", "heat_15min", "h2o2_10"};
  ExpressionMatrix m(4, 3);
  m.set(0, 0, 0.5f);
  m.set(0, 1, 1.25f);
  m.set(0, 2, -0.75f);
  m.set(1, 0, 2.0f);
  // (1,1) missing
  m.set(1, 2, 3.5f);
  m.set(2, 0, -1.0f);
  m.set(2, 1, -2.0f);
  m.set(2, 2, -3.0f);
  // row 3: all missing
  return Dataset("sample", std::move(genes), std::move(conditions),
                 std::move(m));
}

void expect_same_content(const Dataset& a, const Dataset& b,
                         bool same_row_order) {
  ASSERT_EQ(a.gene_count(), b.gene_count());
  ASSERT_EQ(a.condition_count(), b.condition_count());
  EXPECT_EQ(a.conditions(), b.conditions());
  for (std::size_t r = 0; r < a.gene_count(); ++r) {
    const std::size_t rb =
        same_row_order ? r : *b.row_of(a.gene(r).systematic_name);
    EXPECT_EQ(a.gene(r).systematic_name, b.gene(rb).systematic_name);
    EXPECT_EQ(a.gene(r).common_name, b.gene(rb).common_name);
    EXPECT_EQ(a.gene(r).description, b.gene(rb).description);
    for (std::size_t c = 0; c < a.condition_count(); ++c) {
      const float va = a.values().at(r, c);
      const float vb = b.values().at(rb, c);
      if (fv::stats::is_missing(va)) {
        EXPECT_TRUE(fv::stats::is_missing(vb));
      } else {
        EXPECT_NEAR(va, vb, 1e-5);
      }
    }
  }
}

TEST(PclIoTest, RoundTripPreservesEverything) {
  const Dataset original = sample_dataset();
  const std::string text = fv::expr::format_pcl(original);
  const Dataset parsed = fv::expr::parse_pcl(text, "sample");
  expect_same_content(original, parsed, /*same_row_order=*/true);
}

TEST(PclIoTest, MissingCellsStayMissing) {
  const Dataset parsed =
      fv::expr::parse_pcl(fv::expr::format_pcl(sample_dataset()), "x");
  EXPECT_TRUE(fv::stats::is_missing(parsed.values().at(1, 1)));
  EXPECT_TRUE(fv::stats::is_missing(parsed.values().at(3, 0)));
}

TEST(PclIoTest, ParsesWithoutEweightRow) {
  const std::string text =
      "ID\tNAME\tGWEIGHT\tc1\tc2\n"
      "YAL001C\tTFC3\t1\t0.5\t-0.5\n";
  const Dataset ds = fv::expr::parse_pcl(text, "t");
  EXPECT_EQ(ds.gene_count(), 1u);
  EXPECT_FLOAT_EQ(ds.values().at(0, 1), -0.5f);
}

TEST(PclIoTest, ShortRowsGetTrailingMissing) {
  const std::string text =
      "ID\tNAME\tGWEIGHT\tc1\tc2\tc3\n"
      "YAL001C\tTFC3\t1\t0.5\n";
  const Dataset ds = fv::expr::parse_pcl(text, "t");
  EXPECT_FLOAT_EQ(ds.values().at(0, 0), 0.5f);
  EXPECT_TRUE(fv::stats::is_missing(ds.values().at(0, 1)));
  EXPECT_TRUE(fv::stats::is_missing(ds.values().at(0, 2)));
}

TEST(PclIoTest, MalformedInputsThrowParseError) {
  EXPECT_THROW(fv::expr::parse_pcl("", "t"), fv::ParseError);
  EXPECT_THROW(fv::expr::parse_pcl("ID\tNAME\n", "t"), fv::ParseError);
  EXPECT_THROW(
      fv::expr::parse_pcl("ID\tNAME\tGWEIGHT\tc1\nYAL\tx\t1\tnotanumber\n",
                          "t"),
      fv::ParseError);
  EXPECT_THROW(
      fv::expr::parse_pcl("ID\tNAME\tGWEIGHT\tc1\nYAL\tx\t1\t1\t2\t3\n", "t"),
      fv::ParseError);
}

TEST(PclIoTest, ParseErrorReportsLineNumber) {
  try {
    fv::expr::parse_pcl("ID\tNAME\tGWEIGHT\tc1\nYAL\tx\t1\tbad\n", "t");
    FAIL() << "expected ParseError";
  } catch (const fv::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

Dataset dataset_with_trees() {
  Dataset ds = sample_dataset();
  HierTree gene_tree(4);
  const int a = gene_tree.add_node(2, 0, 0.95);
  const int b = gene_tree.add_node(3, 1, 0.80);
  gene_tree.add_node(a, b, 0.10);
  ds.attach_gene_tree(std::move(gene_tree));
  HierTree array_tree(3);
  const int c = array_tree.add_node(0, 1, 0.88);
  array_tree.add_node(c, 2, 0.42);
  ds.attach_array_tree(std::move(array_tree));
  return ds;
}

TEST(CdtIoTest, RoundTripWithTreesPreservesContentAndOrder) {
  const Dataset original = dataset_with_trees();
  const CdtBundle bundle = fv::expr::format_cdt(original);
  EXPECT_FALSE(bundle.gtr.empty());
  EXPECT_FALSE(bundle.atr.empty());
  const Dataset parsed = fv::expr::parse_cdt(bundle, "sample");
  expect_same_content(original, parsed, /*same_row_order=*/false);

  // Display order (gene labels in dendrogram order) must survive exactly.
  const auto original_order = original.display_order();
  const auto parsed_order = parsed.display_order();
  ASSERT_EQ(original_order.size(), parsed_order.size());
  for (std::size_t i = 0; i < original_order.size(); ++i) {
    EXPECT_EQ(original.gene(original_order[i]).systematic_name,
              parsed.gene(parsed_order[i]).systematic_name);
  }
  // Tree similarities survive.
  ASSERT_TRUE(parsed.gene_tree().has_value());
  EXPECT_NEAR(parsed.gene_tree()->node(parsed.gene_tree()->root()).similarity,
              0.10, 1e-9);
  ASSERT_TRUE(parsed.array_tree().has_value());
}

TEST(CdtIoTest, RoundTripWithoutTreesUsesPlainHeader) {
  const Dataset original = sample_dataset();
  const CdtBundle bundle = fv::expr::format_cdt(original);
  EXPECT_TRUE(bundle.gtr.empty());
  EXPECT_TRUE(bundle.atr.empty());
  EXPECT_EQ(bundle.cdt.rfind("ID\t", 0), 0u);  // no GID column
  const Dataset parsed = fv::expr::parse_cdt(bundle, "sample");
  expect_same_content(original, parsed, /*same_row_order=*/true);
}

TEST(CdtIoTest, GtrWithoutGidColumnThrows) {
  CdtBundle bundle = fv::expr::format_cdt(sample_dataset());
  bundle.gtr = "NODE1X\tGENE0X\tGENE1X\t0.5\n";
  EXPECT_THROW(fv::expr::parse_cdt(bundle, "x"), fv::ParseError);
}

TEST(CdtIoTest, CorruptTreeRowsThrow) {
  const Dataset original = dataset_with_trees();
  CdtBundle bundle = fv::expr::format_cdt(original);
  CdtBundle bad = bundle;
  bad.gtr = "NODE1X\tGENE0X\n";
  EXPECT_THROW(fv::expr::parse_cdt(bad, "x"), fv::ParseError);
  bad = bundle;
  bad.gtr = "NODE1X\tGENE0X\tGENE999X\t0.5\n";
  EXPECT_THROW(fv::expr::parse_cdt(bad, "x"), fv::ParseError);
  bad = bundle;
  // Drop the last (root) merge: incomplete dendrogram.
  const std::size_t last_line = bad.gtr.rfind("NODE3X");
  ASSERT_NE(last_line, std::string::npos);
  bad.gtr.erase(last_line);
  EXPECT_THROW(fv::expr::parse_cdt(bad, "x"), fv::ParseError);
}

TEST(GmtIoTest, RoundTrip) {
  std::vector<GeneSet> sets{
      {"stress_up", "induced under stress", {"HSP26", "CTT1", "DDR2"}},
      {"ribosome", "ribosomal proteins", {"RPL3", "RPS2"}},
  };
  const auto parsed = fv::expr::parse_gmt(fv::expr::format_gmt(sets));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "stress_up");
  EXPECT_EQ(parsed[0].description, "induced under stress");
  EXPECT_EQ(parsed[0].genes,
            (std::vector<std::string>{"HSP26", "CTT1", "DDR2"}));
  EXPECT_EQ(parsed[1].genes.size(), 2u);
}

TEST(GmtIoTest, EmptySetIsAllowed) {
  const auto parsed = fv::expr::parse_gmt("empty\tno genes\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].genes.empty());
}

TEST(GmtIoTest, MalformedRowsThrow) {
  EXPECT_THROW(fv::expr::parse_gmt("onlyname\n"), fv::ParseError);
  EXPECT_THROW(fv::expr::parse_gmt("\tdesc\tg1\n"), fv::ParseError);
}

TEST(GmtIoTest, BlankLinesIgnored) {
  const auto parsed = fv::expr::parse_gmt("\n\na\tb\tg\n\n");
  EXPECT_EQ(parsed.size(), 1u);
}

}  // namespace
