// Unit tests for the util module: RNG, strings, errors, file helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table_io.hpp"
#include "util/timer.hpp"

namespace {

using fv::Rng;

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int agreements = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++agreements;
  }
  EXPECT_LT(agreements, 2);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformU64RejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_u64(0), fv::InvalidArgument);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleRejectsOversizedRequest) {
  Rng rng(3);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), fv::InvalidArgument);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent_copy(42);
  parent_copy.split();
  EXPECT_NE(child.next_u64(), parent_copy.next_u64() == 0 ? 1 : 0);
  SUCCEED();
}

TEST(StringTest, SplitKeepsEmptyFields) {
  const auto fields = fv::str::split("a\t\tb\t", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringTest, SplitSingleField) {
  const auto fields = fv::str::split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(StringTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(fv::str::trim("  x y \t\r\n"), "x y");
  EXPECT_EQ(fv::str::trim(""), "");
  EXPECT_EQ(fv::str::trim("   "), "");
}

TEST(StringTest, ToLowerAsciiOnly) {
  EXPECT_EQ(fv::str::to_lower("YAL001C"), "yal001c");
}

TEST(StringTest, JoinWithSeparator) {
  EXPECT_EQ(fv::str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(fv::str::join({}, ","), "");
}

TEST(StringTest, CaseInsensitiveEquality) {
  EXPECT_TRUE(fv::str::iequals("Heat", "HEAT"));
  EXPECT_FALSE(fv::str::iequals("Heat", "Heat "));
}

TEST(StringTest, CaseInsensitiveContains) {
  EXPECT_TRUE(fv::str::icontains("ribosomal protein L3", "PROTEIN"));
  EXPECT_FALSE(fv::str::icontains("ribosome", "protein"));
  EXPECT_TRUE(fv::str::icontains("anything", ""));
}

TEST(StringTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*fv::str::parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*fv::str::parse_double(" -2e3 "), -2000.0);
  EXPECT_FALSE(fv::str::parse_double("1.5x").has_value());
  EXPECT_FALSE(fv::str::parse_double("").has_value());
  EXPECT_FALSE(fv::str::parse_double("nanx").has_value());
}

TEST(StringTest, ParseIntStrict) {
  EXPECT_EQ(*fv::str::parse_int("42"), 42);
  EXPECT_EQ(*fv::str::parse_int("-7"), -7);
  EXPECT_FALSE(fv::str::parse_int("4.2").has_value());
  EXPECT_FALSE(fv::str::parse_int("").has_value());
}

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(FV_REQUIRE(false, "boom"), fv::InvalidArgument);
  EXPECT_NO_THROW(FV_REQUIRE(true, "fine"));
}

TEST(ErrorTest, AssertThrowsLogicError) {
  EXPECT_THROW(FV_ASSERT(false, "bug"), fv::LogicError);
}

TEST(ErrorTest, ParseErrorCarriesLine) {
  const fv::ParseError e("bad token", 17);
  EXPECT_EQ(e.line(), 17u);
  EXPECT_NE(std::string(e.what()).find("17"), std::string::npos);
}

class TableIoTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "fv_table_io_test.txt")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TableIoTest, RoundTripLines) {
  fv::write_text_file(path_, "alpha\nbeta\r\ngamma\n");
  const auto lines = fv::read_lines(path_);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "alpha");
  EXPECT_EQ(lines[1], "beta");
  EXPECT_EQ(lines[2], "gamma");
}

TEST_F(TableIoTest, MissingFileThrowsIoError) {
  EXPECT_THROW(fv::read_text_file("/nonexistent/fv/file.txt"), fv::IoError);
}

TEST(TimerTest, MeasuresNonNegativeTime) {
  fv::Timer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_GE(timer.millis(), 0.0);
}

}  // namespace
