// Unit tests for the util module: RNG, strings, errors, file helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "mpx/fault.hpp"
#include "util/error.hpp"
#include "util/fault_hash.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table_io.hpp"
#include "util/timer.hpp"
#include "util/xxhash.hpp"

namespace {

using fv::Rng;

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int agreements = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++agreements;
  }
  EXPECT_LT(agreements, 2);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformU64RejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_u64(0), fv::InvalidArgument);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleRejectsOversizedRequest) {
  Rng rng(3);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), fv::InvalidArgument);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent_copy(42);
  parent_copy.split();
  EXPECT_NE(child.next_u64(), parent_copy.next_u64() == 0 ? 1 : 0);
  SUCCEED();
}

TEST(StringTest, SplitKeepsEmptyFields) {
  const auto fields = fv::str::split("a\t\tb\t", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringTest, SplitSingleField) {
  const auto fields = fv::str::split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(StringTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(fv::str::trim("  x y \t\r\n"), "x y");
  EXPECT_EQ(fv::str::trim(""), "");
  EXPECT_EQ(fv::str::trim("   "), "");
}

TEST(StringTest, ToLowerAsciiOnly) {
  EXPECT_EQ(fv::str::to_lower("YAL001C"), "yal001c");
}

TEST(StringTest, JoinWithSeparator) {
  EXPECT_EQ(fv::str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(fv::str::join({}, ","), "");
}

TEST(StringTest, CaseInsensitiveEquality) {
  EXPECT_TRUE(fv::str::iequals("Heat", "HEAT"));
  EXPECT_FALSE(fv::str::iequals("Heat", "Heat "));
}

TEST(StringTest, CaseInsensitiveContains) {
  EXPECT_TRUE(fv::str::icontains("ribosomal protein L3", "PROTEIN"));
  EXPECT_FALSE(fv::str::icontains("ribosome", "protein"));
  EXPECT_TRUE(fv::str::icontains("anything", ""));
}

TEST(StringTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*fv::str::parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*fv::str::parse_double(" -2e3 "), -2000.0);
  EXPECT_FALSE(fv::str::parse_double("1.5x").has_value());
  EXPECT_FALSE(fv::str::parse_double("").has_value());
  EXPECT_FALSE(fv::str::parse_double("nanx").has_value());
}

TEST(StringTest, ParseIntStrict) {
  EXPECT_EQ(*fv::str::parse_int("42"), 42);
  EXPECT_EQ(*fv::str::parse_int("-7"), -7);
  EXPECT_FALSE(fv::str::parse_int("4.2").has_value());
  EXPECT_FALSE(fv::str::parse_int("").has_value());
}

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(FV_REQUIRE(false, "boom"), fv::InvalidArgument);
  EXPECT_NO_THROW(FV_REQUIRE(true, "fine"));
}

TEST(ErrorTest, AssertThrowsLogicError) {
  EXPECT_THROW(FV_ASSERT(false, "bug"), fv::LogicError);
}

TEST(ErrorTest, ParseErrorCarriesLine) {
  const fv::ParseError e("bad token", 17);
  EXPECT_EQ(e.line(), 17u);
  EXPECT_NE(std::string(e.what()).find("17"), std::string::npos);
}

class TableIoTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "fv_table_io_test.txt")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TableIoTest, RoundTripLines) {
  fv::write_text_file(path_, "alpha\nbeta\r\ngamma\n");
  const auto lines = fv::read_lines(path_);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "alpha");
  EXPECT_EQ(lines[1], "beta");
  EXPECT_EQ(lines[2], "gamma");
}

TEST_F(TableIoTest, MissingFileThrowsIoError) {
  EXPECT_THROW(fv::read_text_file("/nonexistent/fv/file.txt"), fv::IoError);
}

TEST(TimerTest, MeasuresNonNegativeTime) {
  fv::Timer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_GE(timer.millis(), 0.0);
}

// ---- fault_hash --------------------------------------------------------
//
// The shared seeded fault-decision hash (util/fault_hash.hpp) was
// extracted from mpx/fault.cpp; mpx decisions for any historical seed must
// never change. The reference below is a verbatim copy of the ORIGINAL
// mpx-local implementation — equivalence against it pins the extraction
// bit-for-bit.

/// Verbatim pre-extraction splitmix64 finalizer from mpx/fault.cpp.
std::uint64_t reference_mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Verbatim pre-extraction mpx uniform_draw.
double reference_uniform_draw(std::uint64_t seed, int source, int dest,
                              int tag, std::uint64_t sequence,
                              std::uint64_t stream) {
  std::uint64_t h = reference_mix64(seed ^ (stream * 0x9e3779b97f4a7c15ull));
  h = reference_mix64(
      h ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
       << 32) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)));
  h = reference_mix64(
      h ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) << 32) ^
      sequence);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

TEST(FaultHashTest, Mix64MatchesOriginalMpxImplementation) {
  for (std::uint64_t x :
       {0ull, 1ull, 42ull, 0xdeadbeefull, 0xffffffffffffffffull,
        0x9e3779b97f4a7c15ull}) {
    EXPECT_EQ(fv::fault_mix64(x), reference_mix64(x)) << "x=" << x;
  }
}

TEST(FaultHashTest, ChainReproducesOriginalMpxEnvelopeDraw) {
  // Sweep envelope coordinates the way mpx chaos runs actually use them.
  for (std::uint64_t seed : {0ull, 7ull, 0xfeedull}) {
    for (int source : {0, 1, 3}) {
      for (int dest : {0, 2}) {
        for (int tag : {0, 5, 1000}) {
          for (std::uint64_t sequence : {0ull, 1ull, 999ull}) {
            const std::uint64_t w1 =
                (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(source))
                 << 32) ^
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest));
            const std::uint64_t w2 =
                (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag))
                 << 32) ^
                sequence;
            EXPECT_DOUBLE_EQ(
                fv::fault_uniform(fv::fault_hash(seed, 1, {w1, w2})),
                reference_uniform_draw(seed, source, dest, tag, sequence, 1));
          }
        }
      }
    }
  }
}

TEST(FaultHashTest, MpxFaultPlanDecisionsPinnedAfterExtraction) {
  // End-to-end through the public mpx API: a spec dropping ~30% must drop
  // exactly the messages the reference chain says it drops.
  fv::mpx::FaultSpec spec;
  spec.seed = 0x5eedULL;
  spec.drop_rate = 0.3;
  const fv::mpx::FaultPlan plan(spec);
  std::size_t drops = 0;
  for (std::uint64_t sequence = 0; sequence < 500; ++sequence) {
    const bool dropped =
        plan.decide(0, 1, 4, sequence) == fv::mpx::FaultAction::kDrop;
    const bool reference_dropped =
        reference_uniform_draw(spec.seed, 0, 1, 4, sequence, 1) < 0.3;
    EXPECT_EQ(dropped, reference_dropped) << "sequence=" << sequence;
    drops += dropped ? 1 : 0;
  }
  // Sanity: the rate is actually in effect (not all/none).
  EXPECT_GT(drops, 100u);
  EXPECT_LT(drops, 200u);
}

TEST(FaultHashTest, UniformStaysInUnitInterval) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = fv::fault_uniform(fv::fault_mix64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(FaultHashTest, StreamsAreIndependent) {
  // Same coordinates, different stream -> different decisions (this is
  // what lets the store's fault families not perturb each other).
  std::size_t same = 0;
  for (std::uint64_t op = 0; op < 200; ++op) {
    if (fv::fault_hash(1, 11, {42, op}) == fv::fault_hash(1, 12, {42, op})) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0u);
}

// ---- xxhash64 ----------------------------------------------------------

std::uint64_t hash_str(std::string_view s, std::uint64_t seed = 0) {
  return fv::xxhash64(
      std::as_bytes(std::span<const char>(s.data(), s.size())), seed);
}

TEST(XxHashTest, MatchesPublishedReferenceVectors) {
  // Reference vectors of the canonical XXH64 implementation. These pin the
  // on-disk artifact checksum format: a change here is a format break.
  EXPECT_EQ(hash_str(""), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(hash_str("abc"), 0x44BC2CF5AD770999ull);
  EXPECT_EQ(hash_str("The quick brown fox jumps over the lazy dog"),
            0x0B242D361FDA71BCull);
}

TEST(XxHashTest, SeedChangesHash) {
  EXPECT_NE(hash_str("abc", 0), hash_str("abc", 1));
}

TEST(XxHashTest, EveryTailLengthIsCovered) {
  // 0..70 bytes crosses every code path: short-input, the 32-byte stripe
  // loop, and all 8/4/1-byte tail combinations. Flipping the last byte
  // must always change the hash.
  std::string s;
  std::uint64_t previous = hash_str(s);
  for (std::size_t len = 1; len <= 70; ++len) {
    s.push_back(static_cast<char>('a' + len % 26));
    const std::uint64_t h = hash_str(s);
    EXPECT_NE(h, previous) << "len=" << len;
    std::string flipped = s;
    flipped.back() = static_cast<char>(flipped.back() ^ 0x20);
    EXPECT_NE(hash_str(flipped), h) << "len=" << len;
    previous = h;
  }
}

TEST(XxHashStreamTest, AnyChunkingMatchesOneShot) {
  // The chunked artifact validator (PageResidency::kOnDemand) hashes the
  // payload through Xxh64Stream in arbitrary-size updates; the result must
  // equal the one-shot hash at EVERY split point or mapped and prefaulted
  // opens would disagree about validity.
  fv::Rng rng(424242);
  std::vector<std::byte> buffer(4096 + 37);  // off 32-byte stripe alignment
  for (auto& b : buffer) {
    b = static_cast<std::byte>(rng.uniform_u64(256));
  }
  const std::span<const std::byte> bytes(buffer);
  const std::uint64_t expected = fv::xxhash64(bytes);

  // Every split of the first 160 bytes plus a sweep of coarse splits.
  for (std::size_t split = 0; split <= bytes.size();
       split += (split < 160 ? 1 : 509)) {
    fv::Xxh64Stream stream;
    stream.update(bytes.first(split));
    stream.update(bytes.subspan(split));
    EXPECT_EQ(stream.digest(), expected) << "split=" << split;
  }

  // Many tiny updates; digest() must also be non-consuming.
  fv::Xxh64Stream stream;
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    stream.update(bytes.subspan(i, std::min<std::size_t>(7, bytes.size() - i)));
  }
  EXPECT_EQ(stream.digest(), expected);
  EXPECT_EQ(stream.digest(), expected);
}

}  // namespace
