// Tests for the SPELL search: dataset weighting, gene ranking against the
// planted ground truth, baseline comparison and retrieval metrics.
#include <gtest/gtest.h>

#include <unordered_set>

#include "expr/synth.hpp"
#include "spell/eval.hpp"
#include "spell/spell.hpp"
#include "util/error.hpp"

namespace {

namespace ex = fv::expr;
namespace sp = fv::spell;

/// Compendium with informative stress/nutrient data, one knockout panel and
/// one pure-noise dataset; 500-gene genome.
ex::Compendium test_compendium(std::size_t genes = 500) {
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(genes);
  spec.stress_datasets = 2;
  spec.nutrient_datasets = 1;
  spec.knockout_datasets = 1;
  spec.noise_datasets = 1;
  spec.measured_fraction = 0.95;
  spec.seed = 77;
  return ex::make_compendium(spec);
}

std::vector<std::string> module_names_of(const ex::Compendium& compendium,
                                         const std::string& module,
                                         std::size_t count) {
  std::vector<std::string> names;
  for (const std::size_t g : compendium.genome.module_members(module)) {
    names.push_back(compendium.genome.gene(g).systematic_name);
    if (names.size() == count) break;
  }
  return names;
}

TEST(SpellTest, RejectsDegenerateInputs) {
  const auto compendium = test_compendium(200);
  const sp::SpellSearch search(compendium.datasets);
  EXPECT_THROW(search.search({}), fv::InvalidArgument);
  EXPECT_THROW(search.search({"NOT_A_GENE"}), fv::InvalidArgument);
  const std::vector<ex::Dataset> empty;
  EXPECT_THROW(sp::SpellSearch s(empty), fv::InvalidArgument);
}

TEST(SpellTest, StressDatasetsOutrankNoiseForEsrQuery) {
  const auto compendium = test_compendium();
  const sp::SpellSearch search(compendium.datasets);
  const auto query = module_names_of(compendium, "ESR_UP", 6);
  const auto result = search.search(query);

  // Find positions of dataset types in the ranking.
  std::size_t noise_position = 0, best_stress_position = 99;
  for (std::size_t i = 0; i < result.dataset_ranking.size(); ++i) {
    const auto& name =
        compendium.datasets[result.dataset_ranking[i].dataset_index].name();
    if (name.rfind("noise", 0) == 0) noise_position = i;
    if (name.rfind("stress", 0) == 0) {
      best_stress_position = std::min(best_stress_position, i);
    }
  }
  EXPECT_LT(best_stress_position, noise_position);
  // Stress datasets carry real positive weight; noise nearly none.
  EXPECT_GT(result.dataset_ranking[best_stress_position].weight, 0.3);
}

TEST(SpellTest, RetrievesHeldOutModuleMembers) {
  const auto compendium = test_compendium();
  const sp::SpellSearch search(compendium.datasets);
  // Query with 6 ESR genes; the remaining members are the held-out truth.
  const auto all_members = compendium.genome.module_members("ESR_UP");
  const auto query = module_names_of(compendium, "ESR_UP", 6);
  std::unordered_set<std::string> held_out;
  for (const std::size_t g : all_members) {
    const std::string& name = compendium.genome.gene(g).systematic_name;
    if (std::find(query.begin(), query.end(), name) == query.end()) {
      held_out.insert(name);
    }
  }
  sp::SpellOptions options;
  options.exclude_query_from_ranking = true;
  const auto result = search.search(query, options);
  ASSERT_GE(result.gene_ranking.size(), 10u);
  const double p10 = sp::precision_at_k(result.gene_ranking, held_out, 10);
  EXPECT_GT(p10, 0.5) << "SPELL should retrieve held-out ESR genes";
}

TEST(SpellTest, BeatsTextMatchBaseline) {
  const auto compendium = test_compendium();
  const sp::SpellSearch search(compendium.datasets);
  const auto query = module_names_of(compendium, "RP", 5);
  std::unordered_set<std::string> relevant;
  for (const std::size_t g : compendium.genome.module_members("RP")) {
    relevant.insert(compendium.genome.gene(g).systematic_name);
  }
  sp::SpellOptions options;
  options.exclude_query_from_ranking = false;
  const auto spell_result = search.search(query, options);
  const auto baseline = sp::text_match_baseline(compendium.datasets, query);
  const double spell_ap =
      sp::average_precision(spell_result.gene_ranking, relevant);
  const double baseline_ap =
      sp::average_precision(baseline.gene_ranking, relevant);
  // Note: our synthetic annotations make text match artificially strong
  // (module members share description text); SPELL must at least match it
  // and must far exceed chance.
  EXPECT_GT(spell_ap, 0.5);
  EXPECT_GT(spell_ap + 0.05, baseline_ap * 0.5);
}

TEST(SpellTest, QueryGenesRankTopWhenIncluded) {
  const auto compendium = test_compendium();
  const sp::SpellSearch search(compendium.datasets);
  const auto query = module_names_of(compendium, "ESR_UP", 6);
  const auto result = search.search(query);
  std::unordered_set<std::string> query_set(query.begin(), query.end());
  std::size_t found_in_top20 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(20, result.gene_ranking.size());
       ++i) {
    if (query_set.count(result.gene_ranking[i].gene) > 0) ++found_in_top20;
  }
  EXPECT_GE(found_in_top20, 4u);
}

TEST(SpellTest, ExcludeQueryOptionRemovesQueryGenes) {
  const auto compendium = test_compendium(300);
  const sp::SpellSearch search(compendium.datasets);
  const auto query = module_names_of(compendium, "ESR_UP", 5);
  sp::SpellOptions options;
  options.exclude_query_from_ranking = true;
  const auto result = search.search(query, options);
  std::unordered_set<std::string> query_set(query.begin(), query.end());
  for (const auto& gene : result.gene_ranking) {
    EXPECT_EQ(query_set.count(gene.gene), 0u);
  }
}

TEST(SpellTest, MinSupportFilters) {
  const auto compendium = test_compendium(300);
  const sp::SpellSearch search(compendium.datasets);
  const auto query = module_names_of(compendium, "ESR_UP", 5);
  sp::SpellOptions options;
  options.min_dataset_support = 100;  // impossible
  const auto result = search.search(query, options);
  EXPECT_TRUE(result.gene_ranking.empty());
}

TEST(SpellTest, DeterministicAcrossRuns) {
  const auto compendium = test_compendium(300);
  const sp::SpellSearch search(compendium.datasets);
  const auto query = module_names_of(compendium, "RP", 5);
  const auto a = search.search(query);
  const auto b = search.search(query);
  ASSERT_EQ(a.gene_ranking.size(), b.gene_ranking.size());
  for (std::size_t i = 0; i < a.gene_ranking.size(); ++i) {
    EXPECT_EQ(a.gene_ranking[i].gene, b.gene_ranking[i].gene);
    EXPECT_DOUBLE_EQ(a.gene_ranking[i].score, b.gene_ranking[i].score);
  }
}

TEST(EvalTest, PrecisionRecallHandComputed) {
  std::vector<sp::GeneScore> ranking{{"a", 5, 1}, {"b", 4, 1}, {"c", 3, 1},
                                     {"d", 2, 1}, {"e", 1, 1}};
  const std::unordered_set<std::string> relevant{"a", "c", "z"};
  EXPECT_DOUBLE_EQ(sp::precision_at_k(ranking, relevant, 1), 1.0);
  EXPECT_DOUBLE_EQ(sp::precision_at_k(ranking, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(sp::precision_at_k(ranking, relevant, 4), 0.5);
  EXPECT_DOUBLE_EQ(sp::recall_at_k(ranking, relevant, 5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(sp::precision_at_k(ranking, relevant, 100), 0.4);
  EXPECT_DOUBLE_EQ(sp::precision_at_k({}, relevant, 5), 0.0);
}

TEST(EvalTest, AveragePrecisionHandComputed) {
  std::vector<sp::GeneScore> ranking{{"a", 5, 1}, {"b", 4, 1}, {"c", 3, 1}};
  const std::unordered_set<std::string> relevant{"a", "c"};
  // Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(sp::average_precision(ranking, relevant), (1.0 + 2.0 / 3.0) / 2,
              1e-12);
  EXPECT_DOUBLE_EQ(sp::average_precision(ranking, {}), 0.0);
}

// Property sweep: SPELL precision@10 on held-out module members stays high
// across different query modules.
class SpellModulePropertyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SpellModulePropertyTest, HeldOutPrecisionAboveChance) {
  const auto compendium = test_compendium();
  const sp::SpellSearch search(compendium.datasets);
  const std::string module = GetParam();
  const auto members = compendium.genome.module_members(module);
  ASSERT_GE(members.size(), 8u);
  const auto query = module_names_of(compendium, module, 5);
  std::unordered_set<std::string> held_out;
  for (const std::size_t g : members) {
    const std::string& name = compendium.genome.gene(g).systematic_name;
    if (std::find(query.begin(), query.end(), name) == query.end()) {
      held_out.insert(name);
    }
  }
  sp::SpellOptions options;
  options.exclude_query_from_ranking = true;
  const auto result = search.search(query, options);
  const double chance = static_cast<double>(held_out.size()) /
                        static_cast<double>(compendium.genome.gene_count());
  EXPECT_GT(sp::precision_at_k(result.gene_ranking, held_out, 10),
            5 * chance)
      << "module " << module;
}

INSTANTIATE_TEST_SUITE_P(Modules, SpellModulePropertyTest,
                         ::testing::Values("ESR_UP", "RP", "RIBI"));


TEST(IterativeSearchTest, QueryGrowsAndStaysInModule) {
  const auto compendium = test_compendium();
  const sp::SpellSearch search(compendium.datasets);
  const auto seed = module_names_of(compendium, "ESR_UP", 3);
  sp::SpellOptions options;
  options.exclude_query_from_ranking = true;
  const auto iterative = sp::iterative_search(search, seed, 3, 5, options);
  EXPECT_EQ(iterative.rounds_run, 3u);
  EXPECT_EQ(iterative.expanded_query.size(), seed.size() + 2 * 5);
  // Adopted genes should overwhelmingly come from the same planted module.
  std::unordered_set<std::string> members;
  for (const std::size_t g : compendium.genome.module_members("ESR_UP")) {
    members.insert(compendium.genome.gene(g).systematic_name);
  }
  std::size_t in_module = 0;
  for (std::size_t i = seed.size(); i < iterative.expanded_query.size();
       ++i) {
    if (members.count(iterative.expanded_query[i]) > 0) ++in_module;
  }
  EXPECT_GE(in_module, 8u) << "at least 8 of 10 adopted genes in-module";
}

TEST(IterativeSearchTest, SingleRoundEqualsPlainSearch) {
  const auto compendium = test_compendium(300);
  const sp::SpellSearch search(compendium.datasets);
  const auto seed = module_names_of(compendium, "RP", 4);
  const auto iterative = sp::iterative_search(search, seed, 1, 5);
  const auto plain = search.search(seed);
  ASSERT_EQ(iterative.final_result.gene_ranking.size(),
            plain.gene_ranking.size());
  for (std::size_t i = 0; i < plain.gene_ranking.size(); ++i) {
    EXPECT_EQ(iterative.final_result.gene_ranking[i].gene,
              plain.gene_ranking[i].gene);
  }
  EXPECT_EQ(iterative.expanded_query, seed);
}

TEST(IterativeSearchTest, ZeroRoundsRejected) {
  const auto compendium = test_compendium(300);
  const sp::SpellSearch search(compendium.datasets);
  EXPECT_THROW(sp::iterative_search(search, {"YAL001C"}, 0, 5),
               fv::InvalidArgument);
}

}  // namespace
