// Tests for the display-wall substrate: command recording/serialization,
// tile culling, and — the key invariant — byte-exact equivalence between the
// composited wall frame and single-pass reference rendering.
#include <gtest/gtest.h>

#include "render/canvas.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wall/command.hpp"
#include "wall/wall_display.hpp"

namespace {

namespace wl = fv::wall;
namespace rd = fv::render;

/// Records a deterministic pseudo-random scene covering every primitive.
wl::CommandList random_scene(std::uint64_t seed, long width, long height,
                             std::size_t commands = 120) {
  fv::Rng rng(seed);
  wl::RecordingCanvas canvas;
  for (std::size_t i = 0; i < commands; ++i) {
    const long x = static_cast<long>(rng.uniform_u64(
        static_cast<std::uint64_t>(width)));
    const long y = static_cast<long>(rng.uniform_u64(
        static_cast<std::uint64_t>(height)));
    const long w = 1 + static_cast<long>(rng.uniform_u64(80));
    const long h = 1 + static_cast<long>(rng.uniform_u64(60));
    const rd::Rgb8 color{static_cast<std::uint8_t>(rng.uniform_u64(256)),
                         static_cast<std::uint8_t>(rng.uniform_u64(256)),
                         static_cast<std::uint8_t>(rng.uniform_u64(256))};
    switch (rng.uniform_u64(6)) {
      case 0:
        canvas.fill_rect(x, y, w, h, color);
        break;
      case 1:
        canvas.draw_rect(x, y, w, h, color);
        break;
      case 2:
        canvas.hline(x, x + w, y, color);
        break;
      case 3:
        canvas.vline(x, y, y + h, color);
        break;
      case 4:
        canvas.line(x, y, x + w, y + h, color);
        break;
      default:
        canvas.text(x, y, "GENE" + std::to_string(i), color, 1);
        break;
    }
  }
  return canvas.take();
}

TEST(CommandTest, RecordingCapturesPrimitives) {
  wl::RecordingCanvas canvas;
  canvas.fill_rect(1, 2, 3, 4, rd::colors::kRed);
  canvas.text(5, 6, "ABC", rd::colors::kWhite, 2);
  canvas.fill_rect(0, 0, 0, 5, rd::colors::kRed);  // degenerate: dropped
  const auto& commands = canvas.commands();
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(commands[0].type, wl::CommandType::kFillRect);
  EXPECT_EQ(commands[1].type, wl::CommandType::kText);
  EXPECT_EQ(commands[1].text, "ABC");
  EXPECT_EQ(commands[1].scale, 2);
}

TEST(CommandTest, BoundsCoverGeometry) {
  wl::RecordingCanvas canvas;
  canvas.hline(10, 3, 7, rd::colors::kRed);  // reversed endpoints
  const auto bounds = canvas.commands()[0].bounds();
  EXPECT_EQ(bounds, (fv::layout::Rect{3, 7, 8, 1}));
  wl::RecordingCanvas canvas2;
  canvas2.line(5, 9, 1, 2, rd::colors::kRed);
  const auto line_bounds = canvas2.commands()[0].bounds();
  EXPECT_EQ(line_bounds.x, 1);
  EXPECT_EQ(line_bounds.y, 2);
  EXPECT_EQ(line_bounds.right(), 6);
  EXPECT_EQ(line_bounds.bottom(), 10);
}

TEST(CommandTest, SerializationRoundTrip) {
  const auto commands = random_scene(5, 300, 200, 50);
  fv::mpx::PayloadWriter writer;
  wl::write_commands(writer, commands);
  const auto payload = writer.take();
  fv::mpx::PayloadReader reader(payload);
  const auto parsed = wl::read_commands(reader);
  ASSERT_EQ(parsed.size(), commands.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].type, commands[i].type);
    EXPECT_EQ(parsed[i].x0, commands[i].x0);
    EXPECT_EQ(parsed[i].y1, commands[i].y1);
    EXPECT_EQ(parsed[i].color, commands[i].color);
    EXPECT_EQ(parsed[i].text, commands[i].text);
  }
  EXPECT_EQ(wl::serialized_size(commands), payload.size());
}

TEST(CommandTest, ReplayEqualsDirectDrawing) {
  const long width = 320, height = 240;
  const auto commands = random_scene(7, width, height);
  const auto replayed = wl::render_reference(commands, width, height);
  // Reference = replay at origin; an independent replay must agree exactly.
  rd::Framebuffer again(width, height);
  wl::replay_commands(again, commands, 0, 0);
  EXPECT_EQ(replayed, again);
}

TEST(CommandTest, ReplayOffsetShowsSubRegion) {
  wl::RecordingCanvas canvas;
  canvas.fill_rect(100, 100, 10, 10, rd::colors::kRed);
  const auto commands = canvas.take();
  rd::Framebuffer tile(20, 20);
  const std::size_t executed = wl::replay_commands(tile, commands, 95, 95);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(tile.at(5, 5), rd::colors::kRed);
  EXPECT_EQ(tile.at(4, 4), rd::colors::kBlack);
  // A far-away tile culls the command entirely.
  rd::Framebuffer far_tile(20, 20);
  EXPECT_EQ(wl::replay_commands(far_tile, commands, 500, 500), 0u);
}

TEST(WallSpecTest, TileGeometry) {
  const wl::WallSpec spec{3, 2, 100, 80};
  EXPECT_EQ(spec.tile_count(), 6u);
  EXPECT_EQ(spec.total_width(), 300u);
  EXPECT_EQ(spec.total_height(), 160u);
  EXPECT_EQ(spec.tile_rect(0), (fv::layout::Rect{0, 0, 100, 80}));
  EXPECT_EQ(spec.tile_rect(4), (fv::layout::Rect{100, 80, 100, 80}));
  EXPECT_THROW(spec.tile_rect(6), fv::InvalidArgument);
}

TEST(WallSpecTest, PaperConfigurations) {
  EXPECT_EQ(wl::WallSpec::princeton_wall().tile_count(), 24u);
  // The paper's "two orders of magnitude" claim: wall pixels vs 2-Mpixel
  // desktop (high resolution AND scale).
  const double ratio =
      static_cast<double>(wl::WallSpec::princeton_wall().total_pixels()) /
      2e6;
  EXPECT_GT(ratio, 9.0);  // resolution alone ~9.4x; scale supplies the rest
}

TEST(WallFrameTest, CompositeMatchesReferenceExactly) {
  const wl::WallSpec spec{3, 2, 64, 48};
  const auto commands = random_scene(11, static_cast<long>(spec.total_width()),
                                     static_cast<long>(spec.total_height()));
  const auto reference = wl::render_reference(commands, spec.total_width(),
                                              spec.total_height());
  for (const auto distribution :
       {wl::Distribution::kBroadcast, wl::Distribution::kPointToPoint}) {
    const auto result = wl::render_wall_frame(commands, spec, distribution);
    EXPECT_EQ(result.frame, reference)
        << "wall composite diverged from reference";
    EXPECT_EQ(result.stats.commands_total, commands.size());
    EXPECT_GT(result.stats.commands_executed, 0u);
    EXPECT_GT(result.stats.bytes_distributed, 0u);
    EXPECT_EQ(result.stats.pixels, spec.total_pixels());
  }
}

TEST(WallFrameTest, FewerNodesThanTilesStillExact) {
  const wl::WallSpec spec{4, 2, 40, 30};
  const auto commands = random_scene(13, static_cast<long>(spec.total_width()),
                                     static_cast<long>(spec.total_height()));
  const auto reference = wl::render_reference(commands, spec.total_width(),
                                              spec.total_height());
  for (const std::size_t nodes : {1u, 2u, 3u}) {
    const auto result = wl::render_wall_frame(
        commands, spec, wl::Distribution::kBroadcast, nodes);
    EXPECT_EQ(result.frame, reference) << nodes << " nodes";
  }
}

TEST(WallFrameTest, PointToPointShipsFewerBytesForLocalScenes) {
  // A scene confined to one tile: point-to-point must ship far less than
  // broadcast (which replicates the full stream to every node).
  const wl::WallSpec spec{4, 1, 50, 50};
  wl::RecordingCanvas canvas;
  for (int i = 0; i < 50; ++i) {
    canvas.fill_rect(5 + i % 10, 5 + i / 10, 3, 3, rd::colors::kGreen);
  }
  const auto commands = canvas.take();
  const auto broadcast = wl::render_wall_frame(
      commands, spec, wl::Distribution::kBroadcast);
  const auto p2p = wl::render_wall_frame(commands, spec,
                                         wl::Distribution::kPointToPoint);
  EXPECT_EQ(broadcast.frame, p2p.frame);
  EXPECT_LT(p2p.stats.bytes_distributed,
            broadcast.stats.bytes_distributed / 2);
}

TEST(WallFrameTest, CullingSkipsOffTileCommands) {
  const wl::WallSpec spec{2, 1, 50, 50};
  wl::RecordingCanvas canvas;
  canvas.fill_rect(10, 10, 5, 5, rd::colors::kRed);    // tile 0 only
  canvas.fill_rect(60, 10, 5, 5, rd::colors::kGreen);  // tile 1 only
  const auto commands = canvas.take();
  const auto result = wl::render_wall_frame(commands, spec);
  // Each command executes on exactly one tile: 2 commands, 2 executions.
  EXPECT_EQ(result.stats.commands_executed, 2u);
}

// Property sweep: wall == reference across tile grids and node counts.
class WallEquivalencePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WallEquivalencePropertyTest, ExactComposite) {
  const auto [cols, rows, nodes] = GetParam();
  const wl::WallSpec spec{static_cast<std::size_t>(cols),
                          static_cast<std::size_t>(rows), 48, 36};
  const auto commands = random_scene(
      17 + static_cast<std::uint64_t>(cols * 100 + rows * 10 + nodes),
      static_cast<long>(spec.total_width()),
      static_cast<long>(spec.total_height()), 80);
  const auto reference = wl::render_reference(commands, spec.total_width(),
                                              spec.total_height());
  const auto result = wl::render_wall_frame(
      commands, spec, wl::Distribution::kBroadcast,
      static_cast<std::size_t>(nodes));
  EXPECT_EQ(result.frame, reference);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, WallEquivalencePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 3),
                       ::testing::Values(0, 1, 2)));

// -- fault-tolerant mode (the chaos matrix proper lives in chaos_test.cpp) ---

TEST(WallFaultToleranceTest, HealthyDeadlineFrameStaysExactAndUndegraded) {
  const wl::WallSpec spec{3, 2, 48, 36};
  const auto commands = random_scene(19, static_cast<long>(spec.total_width()),
                                     static_cast<long>(spec.total_height()));
  const auto reference = wl::render_reference(commands, spec.total_width(),
                                              spec.total_height());
  wl::WallOptions options;
  options.node_count = 3;
  options.tile_deadline = std::chrono::milliseconds(2000);
  const auto result = wl::render_wall_frame(commands, spec, options);
  EXPECT_EQ(result.frame, reference);
  EXPECT_FALSE(result.stats.degraded);
  EXPECT_EQ(result.stats.retries, 0u);
  EXPECT_EQ(result.stats.reassigned_tiles, 0u);
  EXPECT_EQ(result.stats.master_rastered_tiles, 0u);
}

TEST(WallFaultToleranceTest, CrashedNodeTilesAreRecovered) {
  const wl::WallSpec spec{3, 2, 48, 36};
  const auto commands = random_scene(23, static_cast<long>(spec.total_width()),
                                     static_cast<long>(spec.total_height()));
  const auto reference = wl::render_reference(commands, spec.total_width(),
                                              spec.total_height());
  wl::WallOptions options;
  options.node_count = 3;
  options.tile_deadline = std::chrono::milliseconds(150);
  options.faults.seed = 31;
  options.faults.crash_rank = 2;  // dies before rendering anything
  options.faults.crash_at_op = 1;
  const auto result = wl::render_wall_frame(commands, spec, options);
  EXPECT_EQ(result.frame, reference)
      << "degradation must never cost correctness";
  EXPECT_TRUE(result.stats.degraded);
  // The dead node's tiles were recovered somewhere: by a surviving node or
  // by the master itself.
  EXPECT_GT(result.stats.reassigned_tiles + result.stats.master_rastered_tiles,
            0u);
}

TEST(WallFaultToleranceTest, FaultsWithoutDeadlineAreRejected) {
  const wl::WallSpec spec{1, 1, 32, 32};
  wl::WallOptions options;
  options.faults.drop_rate = 0.5;  // but tile_deadline stays 0
  EXPECT_THROW(wl::render_wall_frame({}, spec, options), fv::InvalidArgument);

  options.faults = {};
  options.tile_deadline = std::chrono::milliseconds(100);
  options.faults.crash_rank = 0;  // the master must survive
  EXPECT_THROW(wl::render_wall_frame({}, spec, options), fv::InvalidArgument);
}

}  // namespace
