// Storage-fault chaos suite: every injected fault family (torn write,
// truncation, bit flip, ENOSPC, crash-at-op-N) driven through the commit
// protocol and the recompute-or-repair degradation ladder. The invariant
// under test is the store's whole contract: a fault may cost a recompute,
// but it never crashes a consumer, never hangs, and never surfaces wrong
// data — recovery is always bit-identical to a storeless build.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "cluster/hclust.hpp"
#include "expr/dataset.hpp"
#include "expr/gene.hpp"
#include "par/thread_pool.hpp"
#include "sim/lsh.hpp"
#include "sim/similarity_engine.hpp"
#include "spell/spell.hpp"
#include "store/artifact_store.hpp"
#include "store/cached.hpp"
#include "store/fsck.hpp"
#include "util/rng.hpp"
#include "util/triangular.hpp"

namespace {

namespace fs = std::filesystem;

class StoreChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("fv_store_chaos_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Commits one u64 blob under `key` through a clean store.
  void put_blob(std::uint64_t key, std::uint64_t value) {
    fv::store::ArtifactStore store(dir_);
    store.put(fv::store::ArtifactKind::kBlob, key,
              [&](auto& w) { w.scalar(value); });
  }

  /// Reads the blob back through a clean store; the artifact must open.
  std::uint64_t read_blob(std::uint64_t key) {
    fv::store::ArtifactStore store(dir_);
    const auto reader = store.open(fv::store::ArtifactKind::kBlob, key);
    EXPECT_TRUE(reader.has_value());
    return reader ? reader->scalar<std::uint64_t>(0) : 0;
  }

  /// Serves the blob through the degradation ladder with `compute` as the
  /// cold fallback.
  std::uint64_t serve_blob(fv::store::ArtifactStore& store,
                           std::uint64_t key, std::uint64_t fallback,
                           fv::store::OpenStats* stats = nullptr) {
    return fv::store::load_or_compute<std::uint64_t>(
        store, fv::store::ArtifactKind::kBlob, key,
        [](const fv::store::ArtifactReader& r) {
          return r.scalar<std::uint64_t>(0);
        },
        [fallback]() { return fallback; },
        [](fv::store::ArtifactWriter& w, const std::uint64_t& v) {
          w.scalar(v);
        },
        stats);
  }

  std::string dir_;
};

using StoreChaosConsumerTest = StoreChaosTest;

constexpr std::uint64_t kKey = 0xc0ffee;
constexpr std::uint64_t kOld = 0xaaaaaaaaaaaaaaaaULL;
constexpr std::uint64_t kNew = 0xbbbbbbbbbbbbbbbbULL;

TEST_F(StoreChaosTest, CleanSpecInjectsNothing) {
  fv::store::FaultSpec spec;  // all rates zero, no crash point
  EXPECT_FALSE(spec.any());
  fv::store::ArtifactStore store(dir_, spec);
  store.put(fv::store::ArtifactKind::kBlob, kKey,
            [](auto& w) { w.scalar(kOld); });
  EXPECT_EQ(read_blob(kKey), kOld);
  const auto& stats = store.faults().stats();
  EXPECT_EQ(stats.torn_writes.load(), 0u);
  EXPECT_EQ(stats.bitflips.load(), 0u);
  EXPECT_EQ(stats.truncations.load(), 0u);
  EXPECT_EQ(stats.enospc.load(), 0u);
  EXPECT_EQ(stats.crashes.load(), 0u);
}

TEST_F(StoreChaosTest, TornWriteIsDetectedAndRecovered) {
  fv::store::FaultSpec spec;
  spec.seed = 1;
  spec.torn_write_rate = 1.0;  // every copy persists only a prefix
  {
    fv::store::ArtifactStore store(dir_, spec);
    store.put(fv::store::ArtifactKind::kBlob, kKey,
              [](auto& w) { w.scalar(kOld); });
    EXPECT_GT(store.faults().stats().torn_writes.load(), 0u);
  }
  // The commit "succeeded" — a lost sector write is silent — so the file
  // exists but cannot pass its checksums.
  fv::store::ArtifactStore reader(dir_);
  EXPECT_TRUE(reader.contains(fv::store::ArtifactKind::kBlob, kKey));
  EXPECT_THROW((void)reader.open(fv::store::ArtifactKind::kBlob, kKey),
               fv::CorruptArtifactError);
  // The ladder turns that into a recompute + self-heal, never a crash.
  fv::store::OpenStats stats;
  EXPECT_EQ(serve_blob(reader, kKey, kNew, &stats), kNew);
  EXPECT_TRUE(stats.recovered);
  EXPECT_FALSE(stats.warm);
  EXPECT_EQ(reader.stats().quarantined.load(), 1u);
  EXPECT_EQ(read_blob(kKey), kNew);  // healed artifact serves warm now
}

TEST_F(StoreChaosTest, InjectedBitFlipIsDetectedAndRecovered) {
  fv::store::FaultSpec spec;
  spec.seed = 2;
  spec.bitflip_rate = 1.0;
  {
    fv::store::ArtifactStore store(dir_, spec);
    store.put(fv::store::ArtifactKind::kBlob, kKey,
              [](auto& w) { w.scalar(kOld); });
    EXPECT_GT(store.faults().stats().bitflips.load(), 0u);
  }
  fv::store::ArtifactStore reader(dir_);
  EXPECT_THROW((void)reader.open(fv::store::ArtifactKind::kBlob, kKey),
               fv::CorruptArtifactError);
  EXPECT_EQ(serve_blob(reader, kKey, kNew), kNew);
}

TEST_F(StoreChaosTest, SyncTruncationIsDetectedAndRecovered) {
  fv::store::FaultSpec spec;
  spec.seed = 3;
  spec.truncate_rate = 1.0;  // every sync chops the tail instead
  {
    fv::store::ArtifactStore store(dir_, spec);
    store.put(fv::store::ArtifactKind::kBlob, kKey,
              [](auto& w) { w.scalar(kOld); });
    EXPECT_GT(store.faults().stats().truncations.load(), 0u);
  }
  fv::store::ArtifactStore reader(dir_);
  EXPECT_THROW((void)reader.open(fv::store::ArtifactKind::kBlob, kKey),
               fv::CorruptArtifactError);
  EXPECT_EQ(serve_blob(reader, kKey, kNew), kNew);
}

TEST_F(StoreChaosTest, ManualBitFlipHeaderVersusPayload) {
  put_blob(kKey, kOld);
  fv::store::ArtifactStore store(dir_);
  const auto path = store.artifact_path(fv::store::ArtifactKind::kBlob, kKey);
  const auto flip = [&](std::size_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  };
  // One flipped bit in the header: the header checksum catches it and the
  // ladder recovers with the recomputed value.
  flip(30);
  fv::store::OpenStats header_stats;
  EXPECT_EQ(serve_blob(store, kKey, kNew, &header_stats), kNew);
  EXPECT_TRUE(header_stats.recovered);
  // One flipped bit in the payload of the healed artifact: the payload
  // checksum catches it the same way.
  flip(70);
  fv::store::OpenStats payload_stats;
  EXPECT_EQ(serve_blob(store, kKey, kOld, &payload_stats), kOld);
  EXPECT_TRUE(payload_stats.recovered);
  EXPECT_EQ(store.stats().corrupt.load(), 2u);
}

TEST_F(StoreChaosTest, EnospcAbortsCleanlyOldOrNone) {
  fv::store::FaultSpec spec;
  spec.seed = 4;
  spec.enospc_rate = 1.0;  // every allocation fails

  {  // no prior artifact: commit aborts, nothing appears, no tmp left
    fv::store::ArtifactStore store(dir_, spec);
    EXPECT_THROW(store.put(fv::store::ArtifactKind::kBlob, kKey,
                           [](auto& w) { w.scalar(kNew); }),
                 fv::IoError);
    EXPECT_GT(store.faults().stats().enospc.load(), 0u);
  }
  EXPECT_FALSE(fs::exists(
      fv::store::ArtifactStore(dir_).artifact_path(
          fv::store::ArtifactKind::kBlob, kKey)));
  EXPECT_TRUE(fv::store::fsck_scan(dir_).clean());  // no orphan tmp

  put_blob(kKey, kOld);
  {  // prior artifact: the failed commit leaves it untouched
    fv::store::ArtifactStore store(dir_, spec);
    EXPECT_THROW(store.put(fv::store::ArtifactKind::kBlob, kKey,
                           [](auto& w) { w.scalar(kNew); }),
                 fv::IoError);
  }
  EXPECT_EQ(read_blob(kKey), kOld);

  // Through the ladder a full disk degrades to serving the computed value:
  // persist fails, the value is still correct.
  fv::store::ArtifactStore store(dir_, spec);
  fs::remove(store.artifact_path(fv::store::ArtifactKind::kBlob, kKey));
  fv::store::OpenStats stats;
  EXPECT_EQ(serve_blob(store, kKey, kNew, &stats), kNew);
  EXPECT_FALSE(stats.persisted);
  EXPECT_EQ(store.stats().persist_failures.load(), 1u);
}

TEST_F(StoreChaosTest, CrashAtEveryOpLeavesOldArtifactOrNew) {
  // Probe the protocol length with a clean injector: one put = M ops.
  std::uint64_t ops = 0;
  {
    fv::store::ArtifactStore probe(dir_);
    probe.put(fv::store::ArtifactKind::kBlob, kKey,
              [](auto& w) { w.scalar(kOld); });
    ops = probe.faults().ops();
  }
  // 1 allocate, 2 copy header, 3 copy payload, 4 sync, 5 rename,
  // 6 directory sync — pin the protocol so a new op shows up here first.
  ASSERT_EQ(ops, 6u);

  for (std::uint64_t n = 1; n <= ops; ++n) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    put_blob(kKey, kOld);  // the committed state the crash must preserve

    fv::store::FaultSpec spec;
    spec.crash_at_op = static_cast<std::int64_t>(n);
    fv::store::ArtifactStore dying(dir_, spec);
    bool crashed = false;
    try {
      dying.put(fv::store::ArtifactKind::kBlob, kKey,
                [](auto& w) { w.scalar(kNew); });
    } catch (const fv::store::StoreCrashed& crash) {
      crashed = true;
      EXPECT_EQ(crash.op, n);
    }
    ASSERT_TRUE(crashed) << "op " << n;

    // The final name is never torn: the old artifact until the rename op
    // ran, the new one after (the rename is op ops-1; the crash fires
    // before its op executes).
    const std::uint64_t value = read_blob(kKey);
    if (n <= ops - 1) {
      EXPECT_EQ(value, kOld) << "op " << n;
    } else {
      EXPECT_EQ(value, kNew) << "op " << n;
    }

    // The only possible debris is an orphaned temporary; fsck sweeps it
    // and the next process commits normally.
    const auto report = fv::store::fsck_repair(dir_);
    EXPECT_EQ(report.corrupt, 0u) << "op " << n;
    EXPECT_EQ(report.orphan_tmp + report.valid, report.entries.size());
    EXPECT_TRUE(fv::store::fsck_scan(dir_).clean()) << "op " << n;
    put_blob(kKey, kNew);
    EXPECT_EQ(read_blob(kKey), kNew) << "op " << n;
  }
}

TEST_F(StoreChaosTest, StoreCrashedPropagatesThroughTheLadder) {
  // A simulated dead process must not "recover" — StoreCrashed is not an
  // fv::Error and flies straight through load_or_compute.
  fv::store::FaultSpec spec;
  spec.crash_at_op = 1;
  fv::store::ArtifactStore store(dir_, spec);
  EXPECT_THROW((void)serve_blob(store, kKey, kNew),
               fv::store::StoreCrashed);
}

TEST_F(StoreChaosTest, SameSeedReproducesTheSameDamage) {
  fv::store::FaultSpec spec;
  spec.seed = 77;
  spec.torn_write_rate = 0.5;
  spec.bitflip_rate = 0.5;
  const auto run = [&]() {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    fv::store::ArtifactStore store(dir_, spec);
    const std::vector<std::uint64_t> payload(64, 0x123456789abcdef0ULL);
    store.put(fv::store::ArtifactKind::kBlob, kKey,
              [&](auto& w) { w.section(payload); });
    std::ifstream f(store.artifact_path(fv::store::ArtifactKind::kBlob,
                                        kKey),
                    std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(f),
                             std::istreambuf_iterator<char>());
  };
  const auto first = run();
  const auto second = run();
  // Same seed, same path, same op sequence: byte-for-byte the same torn /
  // flipped file — chaos scenarios are replayable.
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0);
}

// ---- every cached consumer under every fault family --------------------

fv::expr::ExpressionMatrix chaos_matrix(std::size_t rows, std::size_t cols,
                                        std::uint64_t seed) {
  fv::Rng rng(seed);
  fv::expr::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform() < 0.04) continue;  // leave missing
      m.set(r, c,
            static_cast<float>(std::sin(0.7 * (r % 5) + 0.3 * c) +
                               0.2 * rng.normal()));
    }
  }
  return m;
}

TEST_F(StoreChaosConsumerTest, EveryConsumerSurvivesEveryFaultFamily) {
  const auto matrix = chaos_matrix(40, 10, 9);
  const auto input_key = fv::store::matrix_key(matrix);
  const auto load_matrix = [&]() { return matrix; };
  fv::par::ThreadPool pool(2);

  // Storeless reference values every faulted run must reproduce exactly.
  const auto ref_engine = fv::sim::SimilarityEngine::from_rows(
      matrix, fv::sim::Metric::kPearson);
  fv::cluster::DistanceMatrix ref_distances(ref_engine.size());
  ref_engine.condensed_distances(ref_distances.condensed(), pool);
  const auto ref_table = ref_engine.top_k_neighbors(4, pool);
  const auto ref_merges = fv::cluster::agglomerate(
      ref_distances, fv::cluster::Linkage::kAverage);

  std::vector<fv::store::FaultSpec> specs(4);
  specs[0].torn_write_rate = 1.0;
  specs[1].bitflip_rate = 1.0;
  specs[2].truncate_rate = 1.0;
  specs[3].enospc_rate = 1.0;
  std::uint64_t seed = 100;
  for (auto& spec : specs) spec.seed = seed++;

  for (const auto& spec : specs) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    SCOPED_TRACE("torn=" + std::to_string(spec.torn_write_rate) +
                 " flip=" + std::to_string(spec.bitflip_rate) +
                 " trunc=" + std::to_string(spec.truncate_rate) +
                 " enospc=" + std::to_string(spec.enospc_rate));

    // Round 1, faulted store: cold computes — values must be exactly the
    // reference no matter what the persist side does to the disk.
    // Round 2, clean store over the same directory: whatever round 1 left
    // behind (damaged artifacts, nothing at all) must degrade to the same
    // exact values, never an exception, never a wrong number.
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      fv::store::ArtifactStore store(dir_,
                                     round == 0 ? spec
                                                : fv::store::FaultSpec{});
      const auto engine = fv::store::open_or_build_engine(
          store, input_key, load_matrix, fv::sim::Metric::kPearson);
      ASSERT_EQ(engine.size(), ref_engine.size());
      for (std::size_t i = 0; i + 1 < engine.size(); i += 3) {
        EXPECT_EQ(engine.distance(i, i + 1),
                  ref_engine.distance(i, i + 1));
      }

      const auto distances =
          fv::store::open_or_compute_condensed(store, engine, pool);
      ASSERT_EQ(distances.size(), ref_distances.size());
      EXPECT_EQ(std::memcmp(distances.condensed().data(),
                            ref_distances.condensed().data(),
                            ref_distances.condensed().size() *
                                sizeof(float)),
                0);

      const auto table =
          fv::store::open_or_compute_top_k(store, engine, 4, pool);
      EXPECT_EQ(table.indices, ref_table.indices);
      EXPECT_EQ(table.distances, ref_table.distances);
      EXPECT_EQ(table.valid, ref_table.valid);

      const auto merges = fv::store::open_or_compute_merges(
          store, distances, fv::cluster::Linkage::kAverage);
      ASSERT_EQ(merges.size(), ref_merges.size());
      for (std::size_t i = 0; i < merges.size(); ++i) {
        EXPECT_EQ(merges[i].left, ref_merges[i].left);
        EXPECT_EQ(merges[i].right, ref_merges[i].right);
        EXPECT_EQ(merges[i].distance, ref_merges[i].distance);
      }
    }
  }
}

TEST_F(StoreChaosConsumerTest, LshAndSpellSurviveTornWrites) {
  fv::par::ThreadPool pool(2);
  fv::store::FaultSpec spec;
  spec.seed = 55;
  spec.torn_write_rate = 1.0;

  // LSH bank: faulted cold build == clean warm-less build, exactly.
  const auto matrix = chaos_matrix(120, 12, 21);
  const auto engine = fv::sim::SimilarityEngine::from_rows(
      matrix, fv::sim::Metric::kPearson);
  fv::sim::LshParams params;
  params.bits = 64;
  params.tables = 8;
  const fv::sim::LshIndex reference(engine, params, pool);
  for (int round = 0; round < 2; ++round) {
    fv::store::ArtifactStore store(dir_, round == 0 ? spec
                                                    : fv::store::FaultSpec{});
    const auto index =
        fv::store::open_or_build_lsh(store, engine, params, pool);
    ASSERT_EQ(index.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto a = reference.signature(i);
      const auto b = index.signature(i);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(std::memcmp(a.data(), b.data(),
                            a.size() * sizeof(std::uint64_t)),
                0);
    }
  }

  // SPELL bank: same two-round sweep, ranked output must match exactly.
  std::vector<fv::expr::Dataset> datasets;
  for (int d = 0; d < 2; ++d) {
    const std::size_t rows = 24;
    const std::size_t cols = 8;
    std::vector<fv::expr::GeneInfo> genes(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      genes[r].systematic_name = "G" + std::to_string(r);
    }
    std::vector<std::string> conditions(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      conditions[c] = "c" + std::to_string(c);
    }
    datasets.emplace_back("ds" + std::to_string(d), std::move(genes),
                          std::move(conditions),
                          chaos_matrix(rows, cols, 300 + d));
  }
  const fv::spell::SpellSearch ref_search(datasets, pool);
  const std::vector<std::string> query{"G1", "G2"};
  const auto expected = ref_search.search(query);
  for (int round = 0; round < 2; ++round) {
    fv::store::ArtifactStore store(dir_, round == 0 ? spec
                                                    : fv::store::FaultSpec{});
    const auto search =
        fv::store::open_or_build_spell(store, datasets, pool);
    const auto got = search.search(query);
    ASSERT_EQ(got.gene_ranking.size(), expected.gene_ranking.size());
    for (std::size_t i = 0; i < expected.gene_ranking.size(); ++i) {
      EXPECT_EQ(got.gene_ranking[i].gene, expected.gene_ranking[i].gene);
      EXPECT_EQ(got.gene_ranking[i].score, expected.gene_ranking[i].score);
    }
  }
}

// ---- mapped (out-of-core) opens under damage ---------------------------
//
// The borrowed-mapped path raises the stakes: a consumer holds read-only
// spans into the artifact file for its whole lifetime, so damage must be
// caught as a typed error AT OPEN (the kOnDemand chunk-streamed checksum),
// and damage that arrives AFTER open (a foreign truncation under the
// mapping) must surface as fv::CorruptArtifactError from the streaming
// driver's backing check — never a SIGBUS mid-compute.

using StoreChaosMappedTest = StoreChaosTest;

TEST_F(StoreChaosMappedTest, EveryFaultFamilyGivesTypedErrorAtMappedOpen) {
  const auto matrix = chaos_matrix(48, 10, 31);
  const auto input_key = fv::store::matrix_key(matrix);
  const auto engine_key = fv::store::engine_key(
      input_key, fv::sim::Metric::kPearson, fv::sim::Precompute::kAllPairs,
      fv::sim::DenseKernel::kAuto);

  std::vector<fv::store::FaultSpec> specs(3);
  specs[0].torn_write_rate = 1.0;
  specs[1].bitflip_rate = 1.0;
  specs[2].truncate_rate = 1.0;
  std::uint64_t seed = 400;
  for (auto& spec : specs) spec.seed = seed++;

  for (const auto& spec : specs) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    SCOPED_TRACE("torn=" + std::to_string(spec.torn_write_rate) +
                 " flip=" + std::to_string(spec.bitflip_rate) +
                 " trunc=" + std::to_string(spec.truncate_rate));
    {  // persist through a faulted store: the artifact lands damaged
      fv::store::ArtifactStore dying(dir_, spec);
      (void)fv::store::open_or_build_engine(
          dying, input_key, [&]() { return matrix; },
          fv::sim::Metric::kPearson);
    }
    // The raw mapped open reports the damage as a typed error...
    fv::store::ArtifactStore reader(dir_);
    EXPECT_THROW(
        (void)fv::store::open_engine_mapped(reader, engine_key),
        fv::CorruptArtifactError);
    // ...and the mapped degradation ladder recomputes exact values, then
    // serves the self-healed artifact borrowed-mapped.
    fv::store::OpenStats stats;
    const auto healed = fv::store::open_or_build_engine_mapped(
        reader, input_key, [&]() { return matrix; },
        fv::sim::Metric::kPearson, fv::sim::Precompute::kAllPairs,
        fv::sim::DenseKernel::kAuto, &stats);
    EXPECT_TRUE(stats.recovered);
    EXPECT_TRUE(stats.persisted);
    EXPECT_EQ(healed.storage(), fv::sim::EngineStorage::kBorrowedMapped);
    const auto reference = fv::sim::SimilarityEngine::from_rows(
        matrix, fv::sim::Metric::kPearson);
    for (std::size_t i = 0; i + 1 < reference.size(); i += 3) {
      EXPECT_EQ(healed.distance(i, i + 1), reference.distance(i, i + 1));
    }
  }
}

TEST_F(StoreChaosMappedTest, FileShrunkAfterOpenIsTypedErrorNotSigbus) {
  const auto matrix = chaos_matrix(96, 12, 33);
  const auto input_key = fv::store::matrix_key(matrix);
  fv::store::ArtifactStore store(dir_);
  fv::store::OpenStats stats;
  const auto mapped = fv::store::open_or_build_engine_mapped(
      store, input_key, [&]() { return matrix; }, fv::sim::Metric::kPearson,
      fv::sim::Precompute::kAllPairs, fv::sim::DenseKernel::kAuto, &stats);
  ASSERT_EQ(mapped.storage(), fv::sim::EngineStorage::kBorrowedMapped);

  // Sanity: the streaming driver runs clean before the damage.
  std::vector<float> out(fv::condensed_size(mapped.size()));
  mapped.condensed_distances(std::span<float>(out));

  // A foreign process truncates the artifact UNDER the live mapping. The
  // mapping itself cannot notice (mmap keeps the old length); touching an
  // evaporated page is SIGBUS. The streaming driver's per-stripe backing
  // check must turn that into a typed error before any touch.
  const auto path = store.artifact_path(
      fv::store::ArtifactKind::kEngine,
      fv::store::engine_key(input_key, fv::sim::Metric::kPearson,
                            fv::sim::Precompute::kAllPairs,
                            fv::sim::DenseKernel::kAuto));
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(mapped.condensed_distances(std::span<float>(out)),
               fv::CorruptArtifactError);

  // The pooled driver and top-k run the same guard at phase start.
  fv::par::ThreadPool pool(2);
  EXPECT_THROW(mapped.condensed_distances(std::span<float>(out), pool),
               fv::CorruptArtifactError);
  EXPECT_THROW((void)mapped.top_k_neighbors(4, pool),
               fv::CorruptArtifactError);
}

TEST_F(StoreChaosMappedTest, DamagedLshArtifactGivesTypedErrorAtMappedOpen) {
  fv::par::ThreadPool pool(2);
  const auto matrix = chaos_matrix(80, 12, 35);
  const auto engine = fv::sim::SimilarityEngine::from_rows(
      matrix, fv::sim::Metric::kPearson);
  fv::sim::LshParams params;
  params.bits = 64;
  params.tables = 8;

  fv::store::ArtifactStore store(dir_);
  (void)fv::store::open_or_build_lsh(store, engine, params, pool);
  const auto mapped = fv::store::open_lsh_mapped(store, engine, params);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->storage(), fv::sim::EngineStorage::kBorrowedMapped);

  const auto path = store.artifact_path(
      fv::store::ArtifactKind::kLshIndex,
      fv::store::lsh_key(fv::store::EngineCodec::content_key(engine),
                         params));
  {  // flip one payload byte: the chunk-streamed checksum must catch it
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(200);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x08);
    f.seekp(200);
    f.write(&b, 1);
  }
  fv::store::ArtifactStore second(dir_);
  EXPECT_THROW((void)fv::store::open_lsh_mapped(second, engine, params),
               fv::CorruptArtifactError);
}

}  // namespace