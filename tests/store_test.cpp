// Functional tests of the artifact store: mapped primitives, the sealed
// artifact format, cached spine products (warm reopen must be
// BIT-IDENTICAL to cold compute), cross-"process" read-only sharing at
// n = 4000, in-process concurrency, and fsck. Storage-fault scenarios
// live in store_chaos_test.cpp.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "cluster/hclust.hpp"
#include "expr/dataset.hpp"
#include "expr/gene.hpp"
#include "par/thread_pool.hpp"
#include "sim/lsh.hpp"
#include "sim/similarity_engine.hpp"
#include "spell/spell.hpp"
#include "stats/descriptive.hpp"
#include "store/artifact_store.hpp"
#include "store/cached.hpp"
#include "store/fsck.hpp"
#include "store/mapped_vector.hpp"
#include "util/rng.hpp"
#include "util/xxhash.hpp"

namespace {

namespace fs = std::filesystem;

/// Fresh store directory per test, removed afterwards.
class StoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("fv_store_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

using MappedVectorTest = StoreDirTest;
using StoreArtifactTest = StoreDirTest;
using StoreCachedTest = StoreDirTest;
using StoreSharingTest = StoreDirTest;
using StoreConcurrencyTest = StoreDirTest;
using FsckTest = StoreDirTest;

/// Deterministic matrix with structure (correlated blocks) and some
/// missing cells — the shape every cached product is exercised on.
fv::expr::ExpressionMatrix make_matrix(std::size_t rows, std::size_t cols,
                                       std::uint64_t seed = 42) {
  fv::Rng rng(seed);
  fv::expr::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double base = static_cast<double>(r % 7);
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform() < 0.03) continue;  // leave missing
      m.set(r, c,
            static_cast<float>(std::sin(base + 0.3 * c) +
                               0.2 * rng.normal()));
    }
  }
  return m;
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x01);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

// ---- MappedVector ------------------------------------------------------

TEST_F(MappedVectorTest, RoundTripAfterSync) {
  const std::string path = dir_ + "/vec.bin";
  std::vector<float> values;
  {
    auto v = fv::store::MappedVector<float>::create(path);
    for (int i = 0; i < 1000; ++i) {
      values.push_back(static_cast<float>(i) * 0.5f);
    }
    v.append(values);
    v.sync();
  }
  const auto r = fv::store::MappedVector<float>::open_read_only(path);
  ASSERT_EQ(r.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(r[i], values[i]);
  }
}

TEST_F(MappedVectorTest, CountIsPublishedOnlyBySync) {
  const std::string path = dir_ + "/vec.bin";
  {
    auto v = fv::store::MappedVector<std::uint32_t>::create(path);
    v.push_back(1);
    v.push_back(2);
    v.sync();
    v.push_back(3);  // appended but never published
    // close() without sync — a crash between appends.
  }
  const auto r = fv::store::MappedVector<std::uint32_t>::open_read_only(path);
  ASSERT_EQ(r.size(), 2u);  // the synced prefix, nothing torn
  EXPECT_EQ(r[0], 1u);
  EXPECT_EQ(r[1], 2u);
}

TEST_F(MappedVectorTest, GrowthPreservesEarlierElements) {
  const std::string path = dir_ + "/vec.bin";
  auto v = fv::store::MappedVector<std::uint64_t>::create(path);
  for (std::uint64_t i = 0; i < 10000; ++i) v.push_back(i * i);
  v.sync();
  EXPECT_GE(v.capacity(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) EXPECT_EQ(v[i], i * i);
}

TEST_F(MappedVectorTest, OnDemandViewReleasesAndGuardsBacking) {
  const std::string path = dir_ + "/vec.bin";
  std::vector<double> values(100000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i) * 0.25;
  }
  {
    auto v = fv::store::MappedVector<double>::create(path);
    v.append(values);
    v.sync();
  }
  // The out-of-core open: nothing prefaulted, elements fault in on touch
  // and can be dropped behind a streaming cursor. Values are unchanged
  // before and after release (release only evicts, never mutates).
  const auto r = fv::store::MappedVector<double>::open_read_only(
      path, /*populate=*/false);
  ASSERT_EQ(r.size(), values.size());
  r.check_backing();  // intact file: no throw
  for (std::size_t i = 0; i < values.size(); i += 10000) {
    EXPECT_EQ(r[i], values[i]);
  }
  r.release_elements(0, values.size());
  r.release_elements(values.size() + 5, 10);  // out of range: no-op
  for (std::size_t i = 0; i < values.size(); i += 10000) {
    EXPECT_EQ(r[i], values[i]);  // refaults from the file
  }
  // A foreign truncation under the mapping is a typed error from the
  // guard, so streaming consumers never touch an evaporated page.
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(r.check_backing(), fv::CorruptArtifactError);
}

TEST_F(MappedVectorTest, OpenValidationRaisesTypedErrors) {
  const std::string path = dir_ + "/vec.bin";
  {  // shorter than the header
    std::ofstream f(path, std::ios::binary);
    f.write("tiny", 4);
  }
  EXPECT_THROW(fv::store::MappedVector<float>::open_read_only(path),
               fv::CorruptArtifactError);

  {
    auto v = fv::store::MappedVector<float>::create(path);
    v.push_back(1.0f);
    v.sync();
  }
  // wrong element type
  EXPECT_THROW(fv::store::MappedVector<double>::open_read_only(path),
               fv::CorruptArtifactError);
  // damaged magic
  flip_byte(path, 0);
  EXPECT_THROW(fv::store::MappedVector<float>::open_read_only(path),
               fv::CorruptArtifactError);
  flip_byte(path, 0);  // restore
  // foreign format version
  flip_byte(path, 8);
  EXPECT_THROW(fv::store::MappedVector<float>::open_read_only(path),
               fv::StaleArtifactError);
  flip_byte(path, 8);
  // published count beyond the file
  fs::resize_file(path, sizeof(fv::store::MappedVectorHeader));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    const std::uint64_t huge = 1000;
    f.seekp(16);  // offsetof(MappedVectorHeader, count)
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_THROW(fv::store::MappedVector<float>::open_read_only(path),
               fv::CorruptArtifactError);
}

// ---- artifact format ---------------------------------------------------

TEST_F(StoreArtifactTest, PutOpenRoundTrip) {
  fv::store::ArtifactStore store(dir_);
  const std::vector<float> floats{1.5f, -2.0f, 3.25f};
  const std::vector<std::uint32_t> ints{7, 8, 9, 10};
  store.put(fv::store::ArtifactKind::kBlob, 0xabcdef, [&](auto& w) {
    w.section(floats);
    w.scalar(std::uint64_t{42});
    w.section(ints);
  });
  const auto reader = store.open(fv::store::ArtifactKind::kBlob, 0xabcdef);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->kind(), fv::store::ArtifactKind::kBlob);
  EXPECT_EQ(reader->key(), 0xabcdefull);
  ASSERT_EQ(reader->section_count(), 3u);
  EXPECT_EQ(reader->vector<float>(0), floats);
  EXPECT_EQ(reader->scalar<std::uint64_t>(1), 42u);
  EXPECT_EQ(reader->vector<std::uint32_t>(2), ints);
  // misreading a section's element type is a typed error, not garbage
  EXPECT_THROW((void)reader->section<double>(0), fv::CorruptArtifactError);
}

TEST_F(StoreArtifactTest, MissingArtifactIsNullopt) {
  fv::store::ArtifactStore store(dir_);
  EXPECT_FALSE(store.open(fv::store::ArtifactKind::kBlob, 1).has_value());
  EXPECT_FALSE(store.contains(fv::store::ArtifactKind::kBlob, 1));
}

TEST_F(StoreArtifactTest, WrongNameForContentIsStale) {
  fv::store::ArtifactStore store(dir_);
  store.put(fv::store::ArtifactKind::kBlob, 1,
            [](auto& w) { w.scalar(std::uint64_t{1}); });
  // A valid artifact renamed to a different key's slot: checksums hold,
  // but the file is not what its name claims.
  fs::copy_file(store.artifact_path(fv::store::ArtifactKind::kBlob, 1),
                store.artifact_path(fv::store::ArtifactKind::kBlob, 2));
  EXPECT_THROW((void)store.open(fv::store::ArtifactKind::kBlob, 2),
               fv::StaleArtifactError);
}

TEST_F(StoreArtifactTest, DamageIsDetectedWhereverItLands) {
  fv::store::ArtifactStore store(dir_);
  const std::vector<double> payload(64, 3.14159);
  store.put(fv::store::ArtifactKind::kBlob, 5,
            [&](auto& w) { w.section(payload); });
  const std::string path =
      store.artifact_path(fv::store::ArtifactKind::kBlob, 5);
  const auto file_size = fs::file_size(path);

  flip_byte(path, 20);  // header
  EXPECT_THROW((void)store.open(fv::store::ArtifactKind::kBlob, 5),
               fv::CorruptArtifactError);
  flip_byte(path, 20);

  flip_byte(path, 100);  // payload
  EXPECT_THROW((void)store.open(fv::store::ArtifactKind::kBlob, 5),
               fv::CorruptArtifactError);
  flip_byte(path, 100);

  ASSERT_TRUE(store.open(fv::store::ArtifactKind::kBlob, 5).has_value());

  fs::resize_file(path, file_size - 8);  // lost tail
  EXPECT_THROW((void)store.open(fv::store::ArtifactKind::kBlob, 5),
               fv::CorruptArtifactError);
}

TEST_F(StoreArtifactTest, QuarantineMovesDamagedFileAside) {
  fv::store::ArtifactStore store(dir_);
  store.put(fv::store::ArtifactKind::kBlob, 9,
            [](auto& w) { w.scalar(std::uint64_t{9}); });
  store.quarantine(fv::store::ArtifactKind::kBlob, 9);
  EXPECT_FALSE(store.contains(fv::store::ArtifactKind::kBlob, 9));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "quarantine"));
  EXPECT_EQ(store.stats().quarantined.load(), 1u);
}

TEST_F(StoreArtifactTest, KeyBuilderIsOrderAndLengthSensitive) {
  using fv::store::KeyBuilder;
  const auto k1 = KeyBuilder{}.string("ab").string("c").key();
  const auto k2 = KeyBuilder{}.string("a").string("bc").key();
  const auto k3 = KeyBuilder{}.string("c").string("ab").key();
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_EQ(k1, KeyBuilder{}.string("ab").string("c").key());
}

// ---- cached spine products --------------------------------------------

TEST_F(StoreCachedTest, EngineWarmReopenIsBitIdentical) {
  const auto matrix = make_matrix(64, 12);
  const auto input_key = fv::store::matrix_key(matrix);
  std::size_t parses = 0;
  const auto load_matrix = [&]() {
    ++parses;
    return matrix;
  };

  fv::store::ArtifactStore cold_store(dir_);
  fv::store::OpenStats cold_stats;
  const auto cold = fv::store::open_or_build_engine(
      cold_store, input_key, load_matrix, fv::sim::Metric::kPearson,
      fv::sim::Precompute::kAllPairs, fv::sim::DenseKernel::kAuto,
      &cold_stats);
  EXPECT_FALSE(cold_stats.warm);
  EXPECT_TRUE(cold_stats.persisted);
  EXPECT_EQ(parses, 1u);

  // A second "session": new store object over the same directory.
  fv::store::ArtifactStore warm_store(dir_);
  fv::store::OpenStats warm_stats;
  const auto warm = fv::store::open_or_build_engine(
      warm_store, input_key, load_matrix, fv::sim::Metric::kPearson,
      fv::sim::Precompute::kAllPairs, fv::sim::DenseKernel::kAuto,
      &warm_stats);
  EXPECT_TRUE(warm_stats.warm);
  EXPECT_EQ(parses, 1u);  // the warm path never parses input

  ASSERT_EQ(warm.size(), cold.size());
  ASSERT_EQ(warm.length(), cold.length());
  ASSERT_EQ(warm.stride(), cold.stride());
  EXPECT_EQ(warm.metric(), cold.metric());
  EXPECT_EQ(warm.float_kernel_active(), cold.float_kernel_active());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm.present(i), cold.present(i));
    EXPECT_EQ(warm.row_has_missing(i), cold.row_has_missing(i));
    EXPECT_EQ(warm.zscale(i), cold.zscale(i));
    const auto a = cold.normalized_row(i);
    const auto b = warm.normalized_row(i);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
  }
  for (std::size_t i = 0; i < cold.size(); i += 7) {
    for (std::size_t j = i + 1; j < cold.size(); j += 5) {
      EXPECT_EQ(warm.distance(i, j), cold.distance(i, j));
      EXPECT_EQ(warm.similarity(i, j), cold.similarity(i, j));
    }
  }
}

TEST_F(StoreCachedTest, CondensedDistancesWarmReopenIsBitIdentical) {
  const auto matrix = make_matrix(48, 10);
  const auto engine = fv::sim::SimilarityEngine::from_rows(
      matrix, fv::sim::Metric::kPearson);
  fv::par::ThreadPool pool(2);

  fv::store::ArtifactStore store(dir_);
  fv::store::OpenStats s1, s2;
  const auto cold = fv::store::open_or_compute_condensed(store, engine,
                                                         pool, &s1);
  fv::store::ArtifactStore second(dir_);
  const auto warm = fv::store::open_or_compute_condensed(second, engine,
                                                         pool, &s2);
  EXPECT_FALSE(s1.warm);
  EXPECT_TRUE(s2.warm);
  ASSERT_EQ(warm.size(), cold.size());
  const auto a = cold.condensed();
  const auto b = warm.condensed();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST_F(StoreCachedTest, TopKNeighborsWarmReopenIsBitIdentical) {
  const auto matrix = make_matrix(60, 14);
  const auto engine = fv::sim::SimilarityEngine::from_rows(
      matrix, fv::sim::Metric::kPearson);
  fv::par::ThreadPool pool(2);
  const auto reference = engine.top_k_neighbors(5, pool);

  fv::store::ArtifactStore store(dir_);
  const auto cold =
      fv::store::open_or_compute_top_k(store, engine, 5, pool);
  fv::store::ArtifactStore second(dir_);
  fv::store::OpenStats s2;
  const auto warm = fv::store::open_or_compute_top_k(second, engine, 5,
                                                     pool, 0,
                                                     fv::sim::TopKStrategy::kAuto,
                                                     fv::sim::LshParams{}, &s2);
  EXPECT_TRUE(s2.warm);
  for (const auto* table : {&cold, &warm}) {
    ASSERT_EQ(table->count, reference.count);
    ASSERT_EQ(table->k, reference.k);
    EXPECT_EQ(table->indices, reference.indices);
    EXPECT_EQ(table->distances, reference.distances);
    EXPECT_EQ(table->valid, reference.valid);
  }
}

TEST_F(StoreCachedTest, LshIndexWarmReopenFeedsApproxTopK) {
  const auto matrix = make_matrix(200, 16, 7);
  const auto engine = fv::sim::SimilarityEngine::from_rows(
      matrix, fv::sim::Metric::kPearson);
  fv::par::ThreadPool pool(2);
  fv::sim::LshParams params;
  params.bits = 64;
  params.tables = 8;

  // Reference: storeless approximate top-k (builds its own signatures).
  fv::sim::TopKStats ref_stats;
  const auto reference = engine.top_k_neighbors(
      4, pool, 0, fv::sim::TopKStrategy::kApprox, &ref_stats, params);
  EXPECT_EQ(ref_stats.signatures_built, engine.size());

  fv::store::ArtifactStore store(dir_);
  fv::store::OpenStats s1;
  const auto cold_index =
      fv::store::open_or_build_lsh(store, engine, params, pool, &s1);
  EXPECT_FALSE(s1.warm);

  fv::store::ArtifactStore second(dir_);
  fv::store::OpenStats s2;
  const auto warm_index =
      fv::store::open_or_build_lsh(second, engine, params, pool, &s2);
  EXPECT_TRUE(s2.warm);
  ASSERT_EQ(warm_index.size(), engine.size());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const auto a = cold_index.signature(i);
    const auto b = warm_index.signature(i);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(std::uint64_t)),
              0);
  }

  // The warm index drives the approximate path: same table, and the stats
  // prove no signatures were rebuilt.
  fv::sim::TopKStats warm_stats;
  const auto warm_table = engine.top_k_neighbors(
      4, pool, 0, fv::sim::TopKStrategy::kApprox, &warm_stats, params,
      &warm_index);
  EXPECT_EQ(warm_stats.signatures_built, 0u);
  EXPECT_EQ(warm_table.indices, reference.indices);
  EXPECT_EQ(warm_table.distances, reference.distances);
  EXPECT_EQ(warm_table.valid, reference.valid);
}

TEST_F(StoreCachedTest, MergesWarmReopenIsBitIdentical) {
  const auto matrix = make_matrix(40, 8);
  fv::par::ThreadPool pool(2);
  const auto distances =
      fv::cluster::row_distances(matrix, fv::sim::Metric::kPearson, pool);
  const auto reference =
      fv::cluster::agglomerate(distances, fv::cluster::Linkage::kAverage);

  fv::store::ArtifactStore store(dir_);
  const auto cold = fv::store::open_or_compute_merges(
      store, distances, fv::cluster::Linkage::kAverage);
  fv::store::ArtifactStore second(dir_);
  fv::store::OpenStats s2;
  const auto warm = fv::store::open_or_compute_merges(
      second, distances, fv::cluster::Linkage::kAverage,
      fv::cluster::Agglomerator::kAuto, &s2);
  EXPECT_TRUE(s2.warm);
  for (const auto* merges : {&cold, &warm}) {
    ASSERT_EQ(merges->size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ((*merges)[i].left, reference[i].left);
      EXPECT_EQ((*merges)[i].right, reference[i].right);
      EXPECT_EQ((*merges)[i].distance, reference[i].distance);
    }
  }
}

std::vector<fv::expr::Dataset> make_datasets() {
  std::vector<fv::expr::Dataset> datasets;
  for (int d = 0; d < 2; ++d) {
    const std::size_t rows = 30;
    const std::size_t cols = 8 + 2 * d;
    std::vector<fv::expr::GeneInfo> genes(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      genes[r].systematic_name = "G" + std::to_string(r);
      genes[r].common_name = "gene" + std::to_string(r);
    }
    std::vector<std::string> conditions(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      conditions[c] = "c" + std::to_string(c);
    }
    datasets.emplace_back("ds" + std::to_string(d), std::move(genes),
                          std::move(conditions),
                          make_matrix(rows, cols, 100 + d));
  }
  return datasets;
}

TEST_F(StoreCachedTest, SpellBanksWarmReopenGiveIdenticalRankings) {
  const auto datasets = make_datasets();
  fv::par::ThreadPool pool(2);
  const fv::spell::SpellSearch reference(datasets, pool);
  const std::vector<std::string> query{"G1", "G2", "G3"};
  const auto expected = reference.search(query);

  fv::store::ArtifactStore store(dir_);
  const auto cold =
      fv::store::open_or_build_spell(store, datasets, pool);
  fv::store::ArtifactStore second(dir_);
  fv::store::OpenStats s2;
  const auto warm =
      fv::store::open_or_build_spell(second, datasets, pool, &s2);
  EXPECT_TRUE(s2.warm);

  for (const auto* search : {&cold, &warm}) {
    const auto got = search->search(query);
    ASSERT_EQ(got.gene_ranking.size(), expected.gene_ranking.size());
    for (std::size_t i = 0; i < expected.gene_ranking.size(); ++i) {
      EXPECT_EQ(got.gene_ranking[i].gene, expected.gene_ranking[i].gene);
      EXPECT_EQ(got.gene_ranking[i].score, expected.gene_ranking[i].score);
    }
    ASSERT_EQ(got.dataset_ranking.size(), expected.dataset_ranking.size());
    for (std::size_t i = 0; i < expected.dataset_ranking.size(); ++i) {
      EXPECT_EQ(got.dataset_ranking[i].weight,
                expected.dataset_ranking[i].weight);
    }
  }
}

TEST_F(StoreCachedTest, DamagedEngineArtifactSelfHeals) {
  const auto matrix = make_matrix(32, 10);
  const auto input_key = fv::store::matrix_key(matrix);
  const auto load_matrix = [&]() { return matrix; };

  fv::store::ArtifactStore store(dir_);
  const auto cold = fv::store::open_or_build_engine(
      store, input_key, load_matrix, fv::sim::Metric::kPearson);
  const auto path = store.artifact_path(
      fv::store::ArtifactKind::kEngine,
      fv::store::engine_key(input_key, fv::sim::Metric::kPearson,
                            fv::sim::Precompute::kAllPairs,
                            fv::sim::DenseKernel::kAuto));
  flip_byte(path, fs::file_size(path) / 2);

  fv::store::ArtifactStore second(dir_);
  fv::store::OpenStats stats;
  const auto healed = fv::store::open_or_build_engine(
      second, input_key, load_matrix, fv::sim::Metric::kPearson,
      fv::sim::Precompute::kAllPairs, fv::sim::DenseKernel::kAuto, &stats);
  EXPECT_FALSE(stats.warm);
  EXPECT_TRUE(stats.recovered);
  EXPECT_TRUE(stats.persisted);  // self-healed: artifact rewritten
  EXPECT_EQ(second.stats().corrupt.load(), 1u);
  EXPECT_EQ(second.stats().quarantined.load(), 1u);
  // damaged original preserved as evidence
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "quarantine"));

  // recompute is bit-identical and the rewritten artifact serves warm
  for (std::size_t i = 0; i + 1 < cold.size(); i += 3) {
    EXPECT_EQ(healed.distance(i, i + 1), cold.distance(i, i + 1));
  }
  fv::store::ArtifactStore third(dir_);
  fv::store::OpenStats warm_stats;
  (void)fv::store::open_or_build_engine(
      third, input_key, load_matrix, fv::sim::Metric::kPearson,
      fv::sim::Precompute::kAllPairs, fv::sim::DenseKernel::kAuto,
      &warm_stats);
  EXPECT_TRUE(warm_stats.warm);
}

// ---- cross-session sharing at n = 4000 --------------------------------

TEST_F(StoreSharingTest, WarmReopenAtScaleIsBitIdenticalAndShared) {
  // n = 4000 profiles — the compendium scale the warm-reopen story is
  // about. Kept to one modest length so the cold compute stays in CI
  // budget; the bench measures the actual speedup.
  const auto matrix = make_matrix(4000, 24, 11);
  const auto engine = fv::sim::SimilarityEngine::from_rows(
      matrix, fv::sim::Metric::kPearson);
  fv::par::ThreadPool pool(4);

  fv::store::ArtifactStore writer(dir_);
  const auto cold_distances =
      fv::store::open_or_compute_condensed(writer, engine, pool);
  const auto cold_table =
      fv::store::open_or_compute_top_k(writer, engine, 10, pool);

  // Two independent "sessions" holding the same artifacts open at once:
  // read-only mappings of one committed file, a consistent snapshot each.
  fv::store::ArtifactStore session_a(dir_);
  fv::store::ArtifactStore session_b(dir_);
  fv::store::OpenStats sa, sb;
  const auto warm_a =
      fv::store::open_or_compute_condensed(session_a, engine, pool, &sa);
  const auto warm_b =
      fv::store::open_or_compute_condensed(session_b, engine, pool, &sb);
  EXPECT_TRUE(sa.warm);
  EXPECT_TRUE(sb.warm);
  const auto reference = cold_distances.condensed();
  for (const auto* warm : {&warm_a, &warm_b}) {
    ASSERT_EQ(warm->size(), cold_distances.size());
    ASSERT_EQ(warm->condensed().size(), reference.size());
    EXPECT_EQ(std::memcmp(warm->condensed().data(), reference.data(),
                          reference.size() * sizeof(float)),
              0);
  }

  fv::store::OpenStats ta, tb;
  const auto table_a =
      fv::store::open_or_compute_top_k(session_a, engine, 10, pool, 0,
                                       fv::sim::TopKStrategy::kAuto,
                                       fv::sim::LshParams{}, &ta);
  const auto table_b =
      fv::store::open_or_compute_top_k(session_b, engine, 10, pool, 0,
                                       fv::sim::TopKStrategy::kAuto,
                                       fv::sim::LshParams{}, &tb);
  EXPECT_TRUE(ta.warm);
  EXPECT_TRUE(tb.warm);
  for (const auto* table : {&table_a, &table_b}) {
    EXPECT_EQ(table->indices, cold_table.indices);
    EXPECT_EQ(table->distances, cold_table.distances);
    EXPECT_EQ(table->valid, cold_table.valid);
  }
}

// ---- in-process concurrency -------------------------------------------

TEST_F(StoreConcurrencyTest, ParallelLoadOrComputeStaysConsistent) {
  fv::store::ArtifactStore store(dir_);
  // Pre-commit one shared artifact every thread warm-reads while also
  // computing its own — commits serialize on the store's commit lock,
  // reads share the mapping.
  store.put(fv::store::ArtifactKind::kBlob, 999, [](auto& w) {
    w.scalar(std::uint64_t{999});
  });
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> own(8, 0);
  std::vector<std::uint64_t> shared(8, 0);
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&store, &own, &shared, t]() {
      own[t] = fv::store::load_or_compute<std::uint64_t>(
          store, fv::store::ArtifactKind::kBlob, 1000 + t,
          [](const fv::store::ArtifactReader& r) {
            return r.scalar<std::uint64_t>(0);
          },
          [t]() { return 1000 + t; },
          [](fv::store::ArtifactWriter& w, const std::uint64_t& v) {
            w.scalar(v);
          });
      const auto reader =
          store.open(fv::store::ArtifactKind::kBlob, 999);
      shared[t] = reader ? reader->scalar<std::uint64_t>(0) : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(own[t], 1000 + t);
    EXPECT_EQ(shared[t], 999u);
  }
  // Every per-thread artifact is committed and valid.
  const auto report = fv::store::fsck_scan(dir_);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.valid, 9u);
}

// ---- cross-process single-writer lock ----------------------------------

// Commits take an exclusive flock(2) on the store DIRECTORY, so two
// PROCESSES (not just two threads) serialize their commit critical
// sections. The child signals over a pipe just before its put(); the
// parent holds the directory lock for a measured window; the child's put
// must block for (most of) that window and then commit normally.
TEST_F(StoreConcurrencyTest, CommitsSerializeAcrossProcessesViaFlock) {
  int ready_pipe[2];
  ASSERT_EQ(pipe(ready_pipe), 0);

  const int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  ASSERT_GE(dir_fd, 0);
  ASSERT_EQ(::flock(dir_fd, LOCK_EX), 0);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: no gtest, no exceptions escaping; exit code is the verdict.
    ::close(ready_pipe[0]);
    int code = 0;
    try {
      fv::store::ArtifactStore store(dir_);
      const char go = 'g';
      if (::write(ready_pipe[1], &go, 1) != 1) _exit(3);
      const auto start = std::chrono::steady_clock::now();
      store.put(fv::store::ArtifactKind::kBlob, 0x10cc,
                [](auto& w) { w.scalar(std::uint64_t{0x10cc}); });
      const auto blocked_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      // The parent holds the lock ≥ 300 ms after 'go'; generous slack for
      // scheduling, but the child must have measurably waited.
      if (blocked_ms < 150) code = 4;
    } catch (...) {
      code = 5;
    }
    _exit(code);
  }

  // Parent: wait for the child to reach its put, keep the directory locked
  // well past that point, then release and reap.
  ::close(ready_pipe[1]);
  char go = 0;
  ASSERT_EQ(::read(ready_pipe[0], &go, 1), 1);
  ::close(ready_pipe[0]);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::flock(dir_fd, LOCK_UN), 0);
  ::close(dir_fd);

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "child verdict (3=pipe, 4=did not block, 5=threw)";

  // The child's commit landed intact once the lock was released.
  fv::store::ArtifactStore store(dir_);
  const auto reader = store.open(fv::store::ArtifactKind::kBlob, 0x10cc);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->scalar<std::uint64_t>(0), 0x10ccull);
}

// ---- fsck --------------------------------------------------------------

TEST_F(FsckTest, CleanStoreScansClean) {
  fv::store::ArtifactStore store(dir_);
  store.put(fv::store::ArtifactKind::kBlob, 1,
            [](auto& w) { w.scalar(std::uint64_t{1}); });
  const auto report = fv::store::fsck_scan(dir_);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.valid, 1u);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].verdict, fv::store::FsckVerdict::kValid);
}

TEST_F(FsckTest, ClassifiesEveryDamageKindAndRepairs) {
  fv::store::ArtifactStore store(dir_);
  store.put(fv::store::ArtifactKind::kBlob, 1,
            [](auto& w) { w.scalar(std::uint64_t{1}); });
  store.put(fv::store::ArtifactKind::kBlob, 2,
            [](auto& w) { w.scalar(std::uint64_t{2}); });
  store.put(fv::store::ArtifactKind::kBlob, 3,
            [](auto& w) { w.scalar(std::uint64_t{3}); });

  // corrupt #2
  flip_byte(store.artifact_path(fv::store::ArtifactKind::kBlob, 2), 70);
  // make #3 stale: bump the format version and re-seal the header so only
  // the version check fires
  {
    const auto path = store.artifact_path(fv::store::ArtifactKind::kBlob, 3);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    fv::store::ArtifactHeader header{};
    f.read(reinterpret_cast<char*>(&header), sizeof(header));
    header.version = 999;
    header.header_checksum = fv::xxhash64(
        std::as_bytes(std::span<const fv::store::ArtifactHeader>(&header, 1))
            .first(offsetof(fv::store::ArtifactHeader, header_checksum)));
    f.seekp(0);
    f.write(reinterpret_cast<const char*>(&header), sizeof(header));
  }
  // orphaned commit temporary
  {
    std::ofstream f(dir_ + "/blob-00000000000000ff.fva.tmp",
                    std::ios::binary);
    f.write("interrupted", 11);
  }

  const auto scan = fv::store::fsck_scan(dir_);
  EXPECT_FALSE(scan.clean());
  EXPECT_EQ(scan.valid, 1u);
  EXPECT_EQ(scan.corrupt, 1u);
  EXPECT_EQ(scan.stale, 1u);
  EXPECT_EQ(scan.orphan_tmp, 1u);
  EXPECT_EQ(scan.repaired, 0u);  // scan never touches files

  const auto repair = fv::store::fsck_repair(dir_);
  EXPECT_EQ(repair.repaired, 3u);
  // corrupt evidence moved to quarantine, not destroyed
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "quarantine" /
                         "blob-0000000000000002.fva"));

  const auto after = fv::store::fsck_scan(dir_);
  EXPECT_TRUE(after.clean());
  EXPECT_EQ(after.valid, 1u);
  // the intact artifact survived repair
  ASSERT_TRUE(store.open(fv::store::ArtifactKind::kBlob, 1).has_value());
}

}  // namespace