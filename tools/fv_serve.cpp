// fv_serve — run the ForestView analysis server.
//
//   fv_serve [--port P] [--datasets DIR] [--store DIR] [--genes N]
//            [--workers N] [--max-jobs N]
//
// Serves the HTTP/JSON session-and-jobs API (src/serve/README.md) over one
// shared read-only compendium:
//   --datasets DIR   load PCL datasets from DIR (expr::load_compendium_dir);
//                    without it a synthetic yeast-like compendium of
//                    --genes genes (default 2000) is generated, so the
//                    server is demo-able with zero inputs.
//   --store DIR      open the similarity engine through the artifact store
//                    at DIR (borrowed-mapped when a valid artifact exists;
//                    built and persisted on first run) and persist job
//                    results there as blob artifacts — a restarted server
//                    answers repeat requests warm.
//   --port P         listen port (default 8077; 0 = kernel-assigned).
//
// Stop with SIGINT/SIGTERM; shutdown drains the job queue.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "expr/compendium_io.hpp"
#include "expr/synth.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"
#include "store/cached.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void print_usage() {
  std::fprintf(stderr,
               "usage: fv_serve [--port P] [--datasets DIR] [--store DIR] "
               "[--genes N] [--workers N] [--max-jobs N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 8077;
  std::string datasets_dir;
  std::string store_dir;
  std::size_t genes = 2000;
  fv::serve::AnalysisService::Options options;
  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fv_serve: %s needs a value\n", name);
        print_usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(std::atoi(arg_value("--port")));
    } else if (std::strcmp(argv[i], "--datasets") == 0) {
      datasets_dir = arg_value("--datasets");
    } else if (std::strcmp(argv[i], "--store") == 0) {
      store_dir = arg_value("--store");
    } else if (std::strcmp(argv[i], "--genes") == 0) {
      genes = static_cast<std::size_t>(std::atoll(arg_value("--genes")));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.job_workers =
          static_cast<std::size_t>(std::atoll(arg_value("--workers")));
    } else if (std::strcmp(argv[i], "--max-jobs") == 0) {
      options.max_active_jobs =
          static_cast<std::size_t>(std::atoll(arg_value("--max-jobs")));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "fv_serve: unknown option '%s'\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  try {
    // The shared dataset vector every session aliases.
    auto datasets = std::make_shared<std::vector<fv::expr::Dataset>>();
    if (!datasets_dir.empty()) {
      *datasets = fv::expr::load_compendium_dir(datasets_dir);
      std::fprintf(stderr, "fv_serve: loaded %zu datasets from %s\n",
                   datasets->size(), datasets_dir.c_str());
    } else {
      fv::expr::CompendiumSpec spec;
      spec.genome = fv::expr::GenomeSpec::yeast_like(genes);
      *datasets = fv::expr::make_compendium(spec).datasets;
      std::fprintf(stderr,
                   "fv_serve: synthesized %zu demo datasets (%zu genes)\n",
                   datasets->size(), genes);
    }
    if (datasets->empty()) {
      std::fprintf(stderr, "fv_serve: no datasets to serve\n");
      return 2;
    }

    fv::par::ThreadPool compute_pool;
    std::unique_ptr<fv::store::ArtifactStore> store;
    fv::serve::SharedCompendium compendium;
    const fv::expr::ExpressionMatrix& engine_matrix = (*datasets)[0].values();
    if (!store_dir.empty()) {
      store = std::make_unique<fv::store::ArtifactStore>(store_dir);
      compendium = fv::serve::open_shared_compendium(
          *store, fv::store::matrix_key(engine_matrix),
          [&] { return engine_matrix; }, datasets, fv::sim::Metric::kPearson,
          compute_pool);
      options.store = store.get();
    } else {
      auto engine = std::make_shared<fv::sim::SimilarityEngine>(
          fv::sim::SimilarityEngine::from_rows(engine_matrix,
                                               fv::sim::Metric::kPearson));
      auto spell = std::make_shared<fv::spell::SpellSearch>(*datasets,
                                                            compute_pool);
      compendium = fv::serve::make_shared_compendium(std::move(engine),
                                                     datasets,
                                                     std::move(spell));
    }

    fv::serve::AnalysisService service(std::move(compendium), compute_pool,
                                       options);
    fv::serve::HttpServer::Options http_options;
    http_options.port = port;
    fv::serve::HttpServer server(
        [&service](const fv::serve::HttpRequest& request) {
          return service.handle(request);
        },
        http_options);
    std::fprintf(stderr, "fv_serve: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.port()));

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "fv_serve: shutting down (%llu requests served)\n",
                 static_cast<unsigned long long>(server.requests_served()));
    server.stop();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fv_serve: %s\n", error.what());
    return 1;
  }
}
