#!/usr/bin/env python3
"""Fails when any relative markdown link in the repo points at nothing.

Scans every tracked-looking *.md file (build trees and hidden dirs
skipped), extracts inline links and images `[text](target)`, and checks
that relative targets exist on disk after stripping any `#fragment`.
External schemes (http/https/mailto) and pure in-page anchors are
ignored — this is a docs-rot gate, not a web crawler.

Usage: tools/check_markdown_links.py [ROOT]   (default: repo root)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline markdown link/image: [text](target) / ![alt](target). Targets
# with spaces or nested parens are not used in this repo; titles
# (`[t](url "title")`) are split off below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_DIRS = {"build", ".git", ".claude"}
# Retrieved external reference material quotes other repos' markdown
# verbatim (including their relative links); not ours to keep unbroken.
SKIP_FILES = {"SNIPPETS.md", "PAPERS.md"}
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path) -> list[Path]:
    files = []
    for path in root.rglob("*.md"):
        if path.name in SKIP_FILES:
            continue
        parts = set(path.relative_to(root).parts[:-1])
        if parts & SKIP_DIRS or any(p.startswith("build") for p in parts):
            continue
        files.append(path)
    return sorted(files)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    broken: list[str] = []
    checked = 0
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8", errors="replace")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            checked += 1
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                broken.append(
                    f"{md.relative_to(root)}:{line}: broken link -> {target}")
    for report in broken:
        print(report, file=sys.stderr)
    print(f"{checked} relative links checked, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
