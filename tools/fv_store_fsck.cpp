// fv_store_fsck — scan, report and repair a ForestView artifact store.
//
//   fv_store_fsck <store-dir>            scan and report (exit 0 if clean,
//                                        1 if damage was found)
//   fv_store_fsck --repair <store-dir>   additionally quarantine corrupt
//                                        artifacts and sweep stale ones +
//                                        orphaned commit temporaries
//   fv_store_fsck --quiet ...            summary line only
//
// Repair is conservative: corrupt files move to <dir>/quarantine/ (never
// deleted — they are the post-mortem evidence), stale artifacts and
// orphaned *.tmp files are removed (both are recomputable by definition).
// Valid artifacts are never touched. Exit code 2 means the directory
// itself could not be scanned.
#include <cstdio>
#include <cstring>
#include <string>

#include "store/fsck.hpp"
#include "util/error.hpp"

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: fv_store_fsck [--repair] [--quiet] <store-dir>\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool repair = false;
  bool quiet = false;
  std::string directory;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "fv_store_fsck: unknown option '%s'\n", argv[i]);
      print_usage();
      return 2;
    } else if (directory.empty()) {
      directory = argv[i];
    } else {
      print_usage();
      return 2;
    }
  }
  if (directory.empty()) {
    print_usage();
    return 2;
  }

  fv::store::FsckReport report;
  try {
    report = repair ? fv::store::fsck_repair(directory)
                    : fv::store::fsck_scan(directory);
  } catch (const fv::Error& error) {
    std::fprintf(stderr, "fv_store_fsck: %s\n", error.what());
    return 2;
  }

  if (!quiet) {
    for (const auto& entry : report.entries) {
      if (entry.verdict == fv::store::FsckVerdict::kValid) {
        std::printf("  ok        %s (%llu bytes)\n", entry.path.c_str(),
                    static_cast<unsigned long long>(entry.bytes));
      } else {
        std::printf("  %-9s %s — %s\n",
                    fv::store::fsck_verdict_name(entry.verdict),
                    entry.path.c_str(), entry.detail.c_str());
      }
    }
  }
  const std::string repaired_note =
      repair ? ", " + std::to_string(report.repaired) + " repaired" : "";
  std::printf(
      "%s: %zu artifacts — %zu valid, %zu corrupt, %zu stale, %zu orphaned "
      "tmp, %zu unreadable%s\n",
      directory.c_str(), report.entries.size(), report.valid, report.corrupt,
      report.stale, report.orphan_tmp, report.unreadable,
      repaired_note.c_str());
  return report.clean() ? 0 : 1;
}
